//! Isolated-execution oracle (§3.3, §5.1).
//!
//! The paper's slowdown metric divides each request's observed response
//! time by "the response time in an isolated environment where the request
//! executes alone", including adapter loading. The SLO is defined as 5×
//! the average request execution time in a low-load system. Both need the
//! isolated latency of a request, which the cost model provides directly.

use chameleon_gpu::CostModel;
use chameleon_models::adapter::adapter_bytes;
use chameleon_simcore::SimDuration;
use chameleon_workload::{Request, Trace};

/// Isolated (alone-on-the-GPU) latencies of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolatedLatency {
    /// Time to first token, including a cold adapter load.
    pub ttft: SimDuration,
    /// End-to-end latency.
    pub e2e: SimDuration,
}

/// Computes the isolated latency of `req` on `cost`'s engine.
///
/// `with_lora` false runs the request on the bare base model (the
/// Figure 7 "base LLM" curve).
pub fn isolated(cost: &CostModel, req: &Request, with_lora: bool) -> IsolatedLatency {
    let rank = with_lora.then_some(req.rank());
    let (ttft, e2e) =
        cost.isolated_latency(req.input_tokens(), req.output_tokens(), rank, with_lora);
    IsolatedLatency { ttft, e2e }
}

/// Mean isolated E2E latency over (a sample of) the trace — the base of
/// the §5.1 SLO definition.
pub fn mean_isolated_e2e(cost: &CostModel, trace: &Trace, sample_cap: usize) -> SimDuration {
    let n = trace.len().min(sample_cap.max(1));
    if n == 0 {
        return SimDuration::ZERO;
    }
    let step = (trace.len() / n).max(1);
    let mut total = SimDuration::ZERO;
    let mut count = 0u64;
    for req in trace.iter().step_by(step) {
        total += isolated(cost, req, true).e2e;
        count += 1;
    }
    total / count.max(1)
}

/// The paper's SLO: 5× the mean isolated E2E latency (§5.1).
pub fn derive_slo(cost: &CostModel, trace: &Trace) -> SimDuration {
    mean_isolated_e2e(cost, trace, 500).mul_f64(5.0)
}

/// Checks that the adapter-rank dependence of isolated latency matches the
/// adapter bytes formula (exposed for tests and the Figure 7 harness).
pub fn adapter_bytes_of(cost: &CostModel, req: &Request) -> u64 {
    adapter_bytes(cost.llm(), req.rank())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterId, AdapterRank, GpuSpec, LlmSpec};
    use chameleon_simcore::SimTime;
    use chameleon_workload::RequestId;

    fn cost() -> CostModel {
        CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 1)
    }

    fn req(input: u32, output: u32, rank: u32) -> Request {
        Request::new(
            RequestId(0),
            SimTime::ZERO,
            input,
            output,
            AdapterId(0),
            AdapterRank::new(rank),
        )
    }

    #[test]
    fn lora_slows_down_isolated_requests() {
        let c = cost();
        let r = req(256, 32, 64);
        let with = isolated(&c, &r, true);
        let without = isolated(&c, &r, false);
        assert!(with.ttft > without.ttft);
        assert!(with.e2e > without.e2e);
    }

    #[test]
    fn e2e_grows_with_output() {
        let c = cost();
        let short = isolated(&c, &req(128, 8, 32), true);
        let long = isolated(&c, &req(128, 64, 32), true);
        assert!(long.e2e > short.e2e + SimDuration::from_millis(50 * 25));
        assert_eq!(short.ttft, long.ttft, "TTFT independent of output length");
    }

    #[test]
    fn slo_is_five_times_mean() {
        let c = cost();
        let trace = Trace::new(vec![
            req(128, 16, 32),
            req(128, 16, 32).with_arrival(SimTime::from_secs_f64(1.0)),
        ]);
        let mean = mean_isolated_e2e(&c, &trace, 100);
        let slo = derive_slo(&c, &trace);
        assert_eq!(slo, mean.mul_f64(5.0));
        assert!(slo > SimDuration::from_millis(500));
    }

    #[test]
    fn empty_trace_slo_zero() {
        let c = cost();
        assert_eq!(
            mean_isolated_e2e(&c, &Trace::new(vec![]), 10),
            SimDuration::ZERO
        );
    }

    #[test]
    fn adapter_bytes_consistent() {
        let c = cost();
        assert_eq!(adapter_bytes_of(&c, &req(1, 1, 32)), 64 << 20);
    }
}
