//! Named systems from the paper's evaluation, plus cluster-scale variants
//! built on the routing subsystem.

use crate::system::{
    AutoscaleSpec, CachePolicy, EngineSpec, FleetSpec, SchedPolicy, SystemConfig, TopologySpec,
};
use chameleon_engine::{DispatchSpec, FaultSpec, KvSpec, PredictiveSpec};
use chameleon_router::RouterPolicy;
use chameleon_simcore::{SimDuration, SimTime};

/// S-LoRA (§5.1 baseline): FIFO iteration-level scheduling, asynchronous
/// adapter prefetching for queued requests, **no** adapter caching
/// (adapters are discarded when unused).
pub fn slora() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::Fifo,
        cache: CachePolicy::Discard,
        // S-LoRA has no output-length predictor: admission must reserve
        // worst-case KV memory (§5.2.1).
        worst_case_predictor: true,
        ..SystemConfig::base("S-LoRA")
    }
}

/// S-LoRA with μServe's SJF scheduler (§5.3 "S-LoRA+SJF").
pub fn slora_sjf() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::Sjf {
            aging_tokens_per_sec: chameleon_sched::sjf::DEFAULT_AGING_TOKENS_PER_SEC,
        },
        cache: CachePolicy::Discard,
        ..SystemConfig::base("S-LoRA+SJF")
    }
}

/// S-LoRA with chunked-prefill iteration-level scheduling (the Figure 8
/// "Chunk-Prefill" baseline).
pub fn slora_chunked() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::Fifo,
        cache: CachePolicy::Discard,
        chunked_prefill: true,
        worst_case_predictor: true,
        ..SystemConfig::base("Chunk-Prefill")
    }
}

/// The full Chameleon system: adapter cache with the tuned cost-aware
/// eviction policy + the adapter-aware multi-level-queue scheduler.
pub fn chameleon() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::ChameleonMlq {
            dynamic: true,
            bypass: true,
            output_only: false,
        },
        cache: CachePolicy::Chameleon,
        ..SystemConfig::base("Chameleon")
    }
}

/// Ablation: Chameleon's scheduler without its cache (Figure 11
/// "ChNoCache").
pub fn chameleon_no_cache() -> SystemConfig {
    SystemConfig {
        cache: CachePolicy::Discard,
        ..chameleon()
    }
    .with_label("ChameleonNoCache")
}

/// Ablation: Chameleon's cache without its scheduler (Figure 11
/// "ChNoSch").
pub fn chameleon_no_sched() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::Fifo,
        ..chameleon()
    }
    .with_label("ChameleonNoSched")
}

/// Chameleon plus histogram-based predictive prefetching (Figure 18
/// "Chameleon+Prefetch").
pub fn chameleon_prefetch() -> SystemConfig {
    SystemConfig {
        predictive_prefetch: true,
        ..chameleon()
    }
    .with_label("Chameleon+Prefetch")
}

/// Chameleon's cache with LRU eviction (Figure 17 "Ch-LRU").
pub fn chameleon_lru() -> SystemConfig {
    SystemConfig {
        cache: CachePolicy::Lru,
        ..chameleon()
    }
    .with_label("Ch-LRU")
}

/// Chameleon's cache with the equal-weight compound score (Figure 17
/// "Ch-FairShare").
pub fn chameleon_fairshare() -> SystemConfig {
    SystemConfig {
        cache: CachePolicy::FairShare,
        ..chameleon()
    }
    .with_label("Ch-FairShare")
}

/// Chameleon's cache with the GDSF web-caching score (§5.3 discussion).
pub fn chameleon_gdsf() -> SystemConfig {
    SystemConfig {
        cache: CachePolicy::Gdsf,
        ..chameleon()
    }
    .with_label("Ch-GDSF")
}

/// The §5.4.5 "Static" queue configuration: 4 equal queues, equal quotas,
/// no dynamic reconfiguration (cache identical to Chameleon's).
pub fn static_mlq() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::StaticMlq,
        ..chameleon()
    }
    .with_label("Static")
}

/// Chameleon with the degree-1 linear WRS (§4.3.1's "polynomial of degree
/// 1" ablation).
pub fn chameleon_linear_wrs() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::ChameleonLinearWrs,
        ..chameleon()
    }
    .with_label("Ch-LinearWRS")
}

/// Chameleon scaled out to a data-parallel cluster of `engines` behind
/// the paper's §4.4 two-level scheduler: join-shortest-queue global
/// dispatch, adapter cache *replicated* on every engine.
pub fn chameleon_cluster(engines: usize) -> SystemConfig {
    chameleon()
        .with_data_parallel(engines)
        .with_router(RouterPolicy::JoinShortestQueue)
        .with_label(format!("Chameleon-DP{engines}"))
}

/// Chameleon cluster with adapter-affinity routing: rendezvous hashing
/// gives every adapter a home engine (load-aware spill when the home is
/// saturated), so the fleet *partitions* the adapter working set instead
/// of replicating it — the cache-friendly alternative to
/// [`chameleon_cluster`] under many-adapter memory pressure.
pub fn chameleon_cluster_partitioned(engines: usize) -> SystemConfig {
    chameleon()
        .with_data_parallel(engines)
        .with_router(RouterPolicy::AdapterAffinity)
        .with_label(format!("Chameleon-DP{engines}-Affinity"))
}

/// [`chameleon_cluster_partitioned`] with the predictive control plane on
/// top: the coordinator's arrival-history predictor pre-replicates
/// imminently hot adapters onto their stable second rendezvous choice
/// *before* bursts, so affinity spill lands on a warm replica instead of
/// a cold engine. Identical to the partitioned preset in every reactive
/// knob — the pair is the reactive-vs-predictive comparison the
/// `macro_predictive_burst` bench scenario and the efficacy tests run.
pub fn chameleon_cluster_predictive(engines: usize) -> SystemConfig {
    chameleon_cluster_partitioned(engines)
        .with_predictive(PredictiveSpec::new())
        .with_label(format!("Chameleon-DP{engines}-Predictive"))
}

/// [`chameleon_cluster_partitioned`] with the deterministic fault plane
/// armed: engine 1 crashes ten seconds in, the coordinator's timeout
/// detector re-dispatches its queued and in-flight requests through the
/// router with capped exponential backoff, its adapter shard re-homes
/// onto the survivors, and admission sheds when the whole fleet's
/// estimated TTFT exceeds 8× the SLO. Identical to the partitioned
/// preset in every other knob — the pair is the failover comparison the
/// `macro_failover` bench scenario and the recovery-efficacy tests run.
pub fn chameleon_cluster_faulted(engines: usize) -> SystemConfig {
    chameleon_cluster_partitioned(engines)
        .with_fault(
            FaultSpec::new()
                .with_crash(1, SimTime::from_secs_f64(10.0))
                .with_shedding(8.0),
        )
        .with_label(format!("Chameleon-DP{engines}-Faulted"))
}

/// [`chameleon_cluster_predictive`] on a two-rack topology with
/// domain-aware anti-affinity placement: the fleet's first half lives on
/// rack 0, the second on rack 1, and every second-choice placement —
/// affinity spill, burst pre-replication — prefers the best-ranked
/// engine *outside* the primary's rack, so a whole-domain failure can
/// never take the primary and its warm replica together. Identical to
/// the predictive preset in every other knob; pair it with
/// `FaultSpec::with_domain_crash` (or `.without_anti_affinity()` on the
/// topology) for the correlated-failure efficacy comparison.
///
/// # Panics
///
/// Panics if `engines < 2` (a topology needs two racks to matter).
pub fn chameleon_cluster_domains(engines: usize) -> SystemConfig {
    assert!(engines >= 2, "a two-rack topology needs at least 2 engines");
    let racks: Vec<u32> = (0..engines).map(|i| u32::from(i >= engines / 2)).collect();
    chameleon_cluster_predictive(engines)
        .with_fleet(FleetSpec::homogeneous(engines, 1).with_topology(TopologySpec::racks(&racks)))
        .with_label(format!("Chameleon-DP{engines}-Domains"))
}

/// Chameleon cluster on *pure* weighted-rendezvous routing: every request
/// goes to its adapter's home engine, spill disabled. Placement reads no
/// load state at all — the state-independent routing class — which is
/// what makes this preset the byte-identity oracle for amortised dispatch
/// ([`chameleon_cluster_batched`] must reproduce it exactly).
pub fn chameleon_cluster_rendezvous(engines: usize) -> SystemConfig {
    chameleon()
        .with_data_parallel(engines)
        .with_router(RouterPolicy::AdapterAffinityNoSpill)
        .with_label(format!("Chameleon-DP{engines}-Rendezvous"))
}

/// [`chameleon_cluster_rendezvous`] with amortised dispatch barriers:
/// consecutive arrivals coalesce into a single barrier and the whole
/// batch routes with zero snapshot refreshes (the router is
/// state-independent, so its staleness budget is unbounded). Identical to
/// the rendezvous preset in every other knob — and byte-identical in
/// results, per the determinism suite; only the barrier count drops.
pub fn chameleon_cluster_batched(engines: usize) -> SystemConfig {
    chameleon_cluster_rendezvous(engines)
        .with_dispatch(DispatchSpec::new())
        .with_label(format!("Chameleon-DP{engines}-Batched"))
}

/// [`chameleon_cluster_partitioned`] with amortised dispatch barriers
/// under the *bounded-staleness* contract: the load-aware affinity
/// router (spill enabled) declares a `(32 requests, 50 ms)` staleness
/// budget, and batches route from a cached snapshot generation with the
/// coordinator's own placements echoed in — per-engine queue-depth error
/// is bounded by the batch size. Identical to the partitioned preset in
/// every other knob — the pair is the per-arrival-vs-batched comparison
/// the `macro_batched_dispatch` bench scenario runs.
pub fn chameleon_cluster_bounded_staleness(engines: usize) -> SystemConfig {
    chameleon_cluster_partitioned(engines)
        .with_dispatch(DispatchSpec::new())
        .with_label(format!("Chameleon-DP{engines}-BoundedStaleness"))
}

/// [`chameleon_cluster_elastic`] with the predictive control plane: the
/// autoscaler additionally fires on per-engine TTFT-violation estimates
/// and predicted arrivals (growing *before* a forecast burst lands), and
/// draining engines hand their adapter shard to the survivors' caches
/// instead of leaving them to cold-miss it.
pub fn chameleon_cluster_elastic_predictive() -> SystemConfig {
    chameleon_cluster_elastic()
        .with_predictive(PredictiveSpec::new())
        .with_label("Chameleon-Elastic-Predictive")
}

/// Chameleon on a heterogeneous fleet — two TP1 engines next to a TP2 and
/// a TP4 (the §5.6 tensor-parallel axis as cluster members) behind
/// capacity-weighted adapter-affinity routing, so the wider engines win
/// proportionally larger adapter shards.
pub fn chameleon_cluster_hetero() -> SystemConfig {
    chameleon()
        .with_fleet(FleetSpec::mixed_tp(&[1, 1, 2, 4]))
        .with_router(RouterPolicy::AdapterAffinity)
        .with_label("Chameleon-Hetero-TP1124")
}

/// Chameleon on an elastic fleet: two TP1 engines that the queue-depth
/// watching autoscaler grows to at most four (adding TP2 engines) under
/// load and drains back when the backlog clears — each fleet change
/// re-homing only the joining/departing engine's adapter shard.
pub fn chameleon_cluster_elastic() -> SystemConfig {
    chameleon()
        .with_fleet(FleetSpec::homogeneous(2, 1))
        .with_router(RouterPolicy::AdapterAffinity)
        .with_autoscale(AutoscaleSpec::new(2, 4).with_growth(vec![EngineSpec::tp(2)]))
        .with_label("Chameleon-Elastic")
}

/// Chameleon at fleet scale: sixteen mixed-TP engines (ten TP1, four
/// TP2, two TP4) serving a 600-adapter pool behind capacity-weighted
/// adapter-affinity routing, with elastic growth enabled (up to twenty
/// engines, growing by TP2). This is the `macro_cluster16_affinity`
/// bench scenario — the fleet size at which parallel cluster execution
/// ([`SystemConfig::with_parallel_cluster`]) pays for its barriers.
pub fn chameleon_cluster16() -> SystemConfig {
    // A fleet this wide keeps per-engine queues shallow, so the
    // controller is tighter than the small-fleet default — overload
    // bursts actually grow the fleet within a bench-length trace.
    let mut autoscale = AutoscaleSpec::new(16, 20).with_growth(vec![EngineSpec::tp(2)]);
    autoscale.controller.interval = SimDuration::from_secs(2);
    autoscale.controller.scale_up_mean_queue = 2.0;
    autoscale.controller.scale_up_max_queue = 12;
    autoscale.controller.cooldown = SimDuration::from_secs(8);
    chameleon()
        .with_fleet(FleetSpec::mixed_tp(&[
            1, 1, 1, 1, 2, 1, 1, 2, 1, 1, 4, 1, 2, 1, 2, 4,
        ]))
        .with_router(RouterPolicy::AdapterAffinity)
        .with_autoscale(autoscale)
        .with_adapters(600)
        .with_label("Chameleon-Fleet16")
}

/// Chameleon with the unified GPU-memory economy armed: KV-aware
/// admission (batch formation refuses admissions whose block-rounded KV
/// footprint — input plus predicted output, consulting the release
/// schedule — cannot complete, instead of optimistically allocating and
/// unwinding through requeue-front) plus the Apt-Serve-style hybrid
/// cache (under pressure a running request's full KV demotes to a
/// compact hidden-state proxy; restoration is a modelled PCIe
/// transfer). Identical to [`chameleon`] in every other knob — the pair
/// is the optimistic-vs-guarded comparison the `macro_kv_pressure`
/// bench scenario runs.
pub fn chameleon_kv_guarded() -> SystemConfig {
    chameleon()
        .with_kv(KvSpec::new())
        .with_label("Chameleon-KvGuarded")
}

/// [`chameleon_kv_guarded`]'s observe-only arm: the KV economy's meters
/// run (pressure, storm, and refusal-candidate accounting) but neither
/// admission control nor hybrid demotion intervenes — behaviourally the
/// optimistic baseline, with the `kv` canonical line attached. This is
/// the control arm of the bench comparison.
pub fn chameleon_kv_observed() -> SystemConfig {
    chameleon()
        .with_kv(KvSpec::observe())
        .with_label("Chameleon-KvObserved")
}

/// Chameleon with the WRS reduced to predicted output length only
/// (Figure 19 "OutputOnly").
pub fn chameleon_output_only() -> SystemConfig {
    SystemConfig {
        sched: SchedPolicy::ChameleonMlq {
            dynamic: true,
            bypass: true,
            output_only: true,
        },
        ..chameleon()
    }
    .with_label("OutputOnly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_have_no_cache() {
        assert_eq!(slora().cache, CachePolicy::Discard);
        assert_eq!(slora_sjf().cache, CachePolicy::Discard);
        assert_eq!(chameleon_no_cache().cache, CachePolicy::Discard);
    }

    #[test]
    fn chameleon_is_fully_enabled() {
        let c = chameleon();
        assert_eq!(c.cache, CachePolicy::Chameleon);
        assert!(matches!(
            c.sched,
            SchedPolicy::ChameleonMlq {
                dynamic: true,
                bypass: true,
                output_only: false
            }
        ));
        assert!(!c.predictive_prefetch);
        assert!(c.prefetch_queued);
    }

    #[test]
    fn ablations_differ_in_exactly_one_axis() {
        let full = chameleon();
        let no_cache = chameleon_no_cache();
        assert_eq!(no_cache.sched, full.sched);
        assert_ne!(no_cache.cache, full.cache);
        let no_sched = chameleon_no_sched();
        assert_eq!(no_sched.cache, full.cache);
        assert_ne!(no_sched.sched, full.sched);
    }

    #[test]
    fn cluster_presets_differ_only_in_routing() {
        let replicated = chameleon_cluster(4);
        let partitioned = chameleon_cluster_partitioned(4);
        assert_eq!(replicated.data_parallel, 4);
        assert_eq!(partitioned.data_parallel, 4);
        assert_eq!(replicated.router, RouterPolicy::JoinShortestQueue);
        assert_eq!(partitioned.router, RouterPolicy::AdapterAffinity);
        assert_eq!(replicated.sched, partitioned.sched);
        assert_eq!(replicated.cache, partitioned.cache);
        // Single-engine presets keep the paper's default dispatch.
        assert_eq!(chameleon().router, RouterPolicy::JoinShortestQueue);
    }

    #[test]
    fn hetero_preset_mixes_tp_degrees() {
        let c = chameleon_cluster_hetero();
        assert_eq!(c.engine_count(), 4);
        assert_eq!(c.router, RouterPolicy::AdapterAffinity);
        let tps: Vec<u32> = (0..4).map(|i| c.engine_spec(i).tp_degree).collect();
        assert_eq!(tps, vec![1, 1, 2, 4]);
        assert!(c.autoscale.is_none());
    }

    #[test]
    fn elastic_preset_scales_two_to_four() {
        let c = chameleon_cluster_elastic();
        assert_eq!(c.engine_count(), 2);
        let auto = c.autoscale.as_ref().expect("elastic preset autoscales");
        assert_eq!(auto.controller.min_engines, 2);
        assert_eq!(auto.controller.max_engines, 4);
        assert_eq!(c.growth_spec(0).tp_degree, 2, "grows by TP2 engines");
        assert_eq!(c.router, RouterPolicy::AdapterAffinity);
    }

    #[test]
    fn predictive_presets_differ_only_in_the_control_plane() {
        let reactive = chameleon_cluster_partitioned(4);
        let predictive = chameleon_cluster_predictive(4);
        assert!(reactive.predictive.is_none());
        let spec = predictive.predictive.expect("control plane enabled");
        assert!(spec.prereplicate && spec.handoff && spec.slo_autoscale);
        assert_eq!(predictive.router, reactive.router);
        assert_eq!(predictive.sched, reactive.sched);
        assert_eq!(predictive.cache, reactive.cache);
        assert_eq!(predictive.data_parallel, reactive.data_parallel);
        let elastic = chameleon_cluster_elastic_predictive();
        assert!(elastic.predictive.is_some());
        assert!(elastic.autoscale.is_some());
        // The base presets remain reactive.
        for cfg in [
            chameleon(),
            chameleon_cluster_hetero(),
            chameleon_cluster_elastic(),
        ] {
            assert!(cfg.predictive.is_none(), "{} gained prediction", cfg.label);
        }
    }

    #[test]
    fn faulted_preset_differs_only_in_the_fault_plane() {
        let clean = chameleon_cluster_partitioned(4);
        let faulted = chameleon_cluster_faulted(4);
        assert!(clean.fault.is_none());
        let spec = faulted.fault.as_ref().expect("fault plane armed");
        assert_eq!(spec.crashes, vec![(1, SimTime::from_secs_f64(10.0))]);
        assert!(spec.sheds());
        assert_eq!(faulted.router, clean.router);
        assert_eq!(faulted.sched, clean.sched);
        assert_eq!(faulted.cache, clean.cache);
        assert_eq!(faulted.data_parallel, clean.data_parallel);
    }

    #[test]
    fn batched_presets_differ_only_in_the_dispatch_axis() {
        let rendezvous = chameleon_cluster_rendezvous(4);
        let batched = chameleon_cluster_batched(4);
        assert!(rendezvous.dispatch.is_none());
        assert_eq!(batched.dispatch, Some(DispatchSpec::new()));
        assert_eq!(batched.router, rendezvous.router);
        assert_eq!(rendezvous.router, RouterPolicy::AdapterAffinityNoSpill);
        assert_eq!(batched.sched, rendezvous.sched);
        assert_eq!(batched.cache, rendezvous.cache);
        assert_eq!(batched.data_parallel, rendezvous.data_parallel);

        let partitioned = chameleon_cluster_partitioned(4);
        let bounded = chameleon_cluster_bounded_staleness(4);
        assert!(partitioned.dispatch.is_none());
        assert_eq!(bounded.dispatch, Some(DispatchSpec::new()));
        assert_eq!(bounded.router, RouterPolicy::AdapterAffinity);
        assert_eq!(bounded.sched, partitioned.sched);
        assert_eq!(bounded.cache, partitioned.cache);

        // Every pre-existing preset stays on per-arrival dispatch.
        for cfg in [
            chameleon(),
            chameleon_cluster(4),
            chameleon_cluster_partitioned(4),
            chameleon_cluster_hetero(),
            chameleon_cluster_elastic(),
            chameleon_cluster16(),
        ] {
            assert!(cfg.dispatch.is_none(), "{} gained batching", cfg.label);
        }
    }

    #[test]
    fn kv_presets_differ_only_in_the_memory_economy() {
        let optimistic = chameleon();
        let guarded = chameleon_kv_guarded();
        let observed = chameleon_kv_observed();
        assert!(optimistic.kv.is_none());
        let g = guarded.kv.expect("guarded arm armed");
        assert!(g.admission && g.hybrid);
        let o = observed.kv.expect("observed arm metered");
        assert!(!o.admission && !o.hybrid);
        for armed in [&guarded, &observed] {
            assert_eq!(armed.sched, optimistic.sched);
            assert_eq!(armed.cache, optimistic.cache);
            assert_eq!(armed.router, optimistic.router);
            assert_eq!(armed.data_parallel, optimistic.data_parallel);
        }
        // Every pre-existing preset stays unmetered.
        for cfg in [
            slora(),
            chameleon(),
            chameleon_cluster(4),
            chameleon_cluster_partitioned(4),
            chameleon_cluster_hetero(),
            chameleon_cluster_elastic(),
            chameleon_cluster16(),
        ] {
            assert!(cfg.kv.is_none(), "{} gained KV metering", cfg.label);
        }
    }

    #[test]
    fn fleet16_preset_shape() {
        let c = chameleon_cluster16();
        assert_eq!(c.engine_count(), 16);
        assert_eq!(c.num_adapters, 600);
        assert_eq!(c.router, RouterPolicy::AdapterAffinity);
        let auto = c.autoscale.as_ref().expect("elastic growth enabled");
        assert_eq!(auto.controller.min_engines, 16);
        assert_eq!(auto.controller.max_engines, 20);
        let tps: Vec<u32> = (0..16).map(|i| c.engine_spec(i).tp_degree).collect();
        assert_eq!(tps.iter().filter(|&&t| t == 1).count(), 10);
        assert_eq!(tps.iter().filter(|&&t| t == 2).count(), 4);
        assert_eq!(tps.iter().filter(|&&t| t == 4).count(), 2);
    }

    #[test]
    fn domains_preset_shape() {
        let c = chameleon_cluster_domains(4);
        let topo = c.topology().expect("topology attached");
        assert!(topo.anti_affinity);
        assert_eq!(topo.rack_count(), 2);
        assert_eq!(
            topo.domains.iter().map(|d| d.rack).collect::<Vec<_>>(),
            vec![0, 0, 1, 1]
        );
        assert!(
            c.predictive.is_some(),
            "pre-replication exercises anti-affinity"
        );
        assert_eq!(c.router, RouterPolicy::AdapterAffinity);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            slora(),
            slora_sjf(),
            slora_chunked(),
            chameleon(),
            chameleon_no_cache(),
            chameleon_no_sched(),
            chameleon_prefetch(),
            chameleon_lru(),
            chameleon_fairshare(),
            chameleon_gdsf(),
            chameleon_cluster(4),
            chameleon_cluster_partitioned(4),
            chameleon_cluster_predictive(4),
            chameleon_cluster_faulted(4),
            chameleon_cluster_domains(4),
            chameleon_cluster_rendezvous(4),
            chameleon_cluster_batched(4),
            chameleon_cluster_bounded_staleness(4),
            chameleon_cluster_elastic_predictive(),
            chameleon_cluster_hetero(),
            chameleon_cluster_elastic(),
            chameleon_cluster16(),
            chameleon_kv_guarded(),
            chameleon_kv_observed(),
            static_mlq(),
            chameleon_output_only(),
            chameleon_linear_wrs(),
        ]
        .iter()
        .map(|c| c.label.clone())
        .collect();
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), labels.len());
    }
}
