//! Deterministic fault injection for the cluster simulator.
//!
//! A [`FaultSpec`] is a *seeded, pre-compiled schedule* of failures —
//! engine crashes at fixed times, transient straggler windows, PCIe
//! transfer failures with a per-transfer probability, and delayed or
//! failed autoscaler provisioning — plus the recovery policy knobs
//! (failure-detection timeout, capped exponential retry backoff, retry
//! budget, SLO-aware shedding threshold).
//!
//! Determinism is the design constraint everything here serves:
//!
//! * Scheduled faults ([`FaultTimeline`]) are compiled once from the spec
//!   into a sorted event list; the cluster coordinator observes them only
//!   at barriers, exactly like arrivals and autoscale ticks, so serial
//!   and parallel execution stay bit-identical by construction.
//! * Probabilistic faults (PCIe transfer failures, provisioning failures)
//!   are *counter-hashed*, not drawn from a shared RNG: each roll hashes
//!   `(seed, stream, counter)` with a splitmix64 finaliser. Engine-local
//!   streams are keyed by engine id and advance with engine-local
//!   counters, so thread-confined engine state rolls the same sequence
//!   regardless of worker count or step interleaving.
//!
//! The spec is carried as `Option<FaultSpec>` by the system config; when
//! absent no layer allocates, rolls, or branches beyond a single `None`
//! check, and every run is byte-for-byte what it was before the fault
//! plane existed.

use chameleon_simcore::{SimDuration, SimTime};

/// One transient straggler window: between `from` and `until` the engine's
/// step (iteration) durations are multiplied by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerWindow {
    /// Raw engine id (matches the cluster's `EngineId.0`).
    pub engine: u32,
    /// Window start (inclusive), observed at the first barrier ≥ `from`.
    pub from: SimTime,
    /// Window end, observed at the first barrier ≥ `until`.
    pub until: SimTime,
    /// Per-step slowdown factor (e.g. `3.0` = steps take 3× as long).
    pub factor: f64,
}

/// One domain-scoped brownout window: between `from` and `until` every
/// engine in the rack runs its steps `factor`× slower — the correlated
/// generalisation of a [`StragglerWindow`] (a shared power cap, a top-of-
/// rack switch melting down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutWindow {
    /// Rack (fault domain) the brownout covers.
    pub rack: u32,
    /// Window start (inclusive), observed at the first barrier ≥ `from`.
    pub from: SimTime,
    /// Window end, observed at the first barrier ≥ `until`.
    pub until: SimTime,
    /// Per-step slowdown factor applied to every engine in the rack.
    pub factor: f64,
}

/// One coordinator↔domain partition window: between `from` and `until`
/// the rack is unreachable — dispatch and retry traffic routes around it,
/// in-flight victims are pulled into the retry ledger (re-dispatched on
/// heal or timeout, whichever is sooner) and the engines rejoin intact
/// when the partition heals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// Rack (fault domain) cut off from the coordinator.
    pub rack: u32,
    /// Partition start (inclusive), observed at the first barrier ≥ `from`.
    pub from: SimTime,
    /// Heal time, observed at the first barrier ≥ `until`.
    pub until: SimTime,
}

/// A seeded, deterministic fault schedule plus the recovery policy.
///
/// Constructed with [`FaultSpec::new`] (recovery armed with sane defaults,
/// no faults scheduled) and populated with the `with_*` builders. Carried
/// as `Option<FaultSpec>` on the system config: `None` is the existing
/// perfect-world stack, byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the counter-hashed probabilistic faults.
    pub seed: u64,
    /// Hard engine crashes: `(engine id, crash time)`. Observed at the
    /// first coordinator barrier ≥ the crash time; the failure detector
    /// then declares the engine dead `detect_timeout` later.
    pub crashes: Vec<(u32, SimTime)>,
    /// Transient straggler windows (per-step slowdown factors).
    pub stragglers: Vec<StragglerWindow>,
    /// Whole-domain crashes: `(rack, crash time)` — every engine in the
    /// rack crashes at once. Requires a fleet topology; racks no engine
    /// lives in are no-ops.
    pub domain_crashes: Vec<(u32, SimTime)>,
    /// Domain-scoped brownout windows (correlated slowdowns).
    pub brownouts: Vec<BrownoutWindow>,
    /// Coordinator↔domain partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Probability that any single PCIe adapter transfer fails and must
    /// be re-issued (the failed attempt still occupies the link).
    pub pcie_fail_prob: f64,
    /// How long after the crash the failure detector declares the engine
    /// dead and recovery (re-dispatch, shard re-homing) begins.
    pub detect_timeout: SimDuration,
    /// Base retry backoff: attempt `n` waits `retry_backoff · 2^(n-1)`,
    /// capped at [`max_backoff`](Self::max_backoff).
    pub retry_backoff: SimDuration,
    /// Cap on the exponential backoff.
    pub max_backoff: SimDuration,
    /// Retry budget per request; a request that fails more times than
    /// this is counted as failed and leaves the system.
    pub max_retries: u32,
    /// SLO-aware load shedding: refuse admission when the *least-loaded*
    /// engine's estimated TTFT exceeds `shed_multiple × SLO`. `0.0` (the
    /// default) disables shedding.
    pub shed_multiple: f64,
    /// Extra provisioning latency for autoscaler scale-ups: the new
    /// engine joins this long after the controller asked for it.
    pub provision_delay: SimDuration,
    /// Probability that a requested scale-up fails outright (the
    /// controller retries on its own cadence).
    pub provision_fail_prob: f64,
}

impl FaultSpec {
    /// Recovery policy armed with defaults, no faults scheduled: a 100 ms
    /// failure detector, 50 ms base backoff capped at 2 s, 3 retries,
    /// shedding and provisioning faults off.
    pub fn new() -> Self {
        FaultSpec {
            seed: 0,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            domain_crashes: Vec::new(),
            brownouts: Vec::new(),
            partitions: Vec::new(),
            pcie_fail_prob: 0.0,
            detect_timeout: SimDuration::from_millis(100),
            retry_backoff: SimDuration::from_millis(50),
            max_backoff: SimDuration::from_secs(2),
            max_retries: 3,
            shed_multiple: 0.0,
            provision_delay: SimDuration::ZERO,
            provision_fail_prob: 0.0,
        }
    }

    /// Overrides the fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedules a hard crash of `engine` at `at`.
    pub fn with_crash(mut self, engine: u32, at: SimTime) -> Self {
        self.crashes.push((engine, at));
        self
    }

    /// Schedules a straggler window on `engine`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a factor below 1.
    pub fn with_straggler(
        mut self,
        engine: u32,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        assert!(from < until, "empty straggler window");
        assert!(factor >= 1.0 && factor.is_finite(), "slowdown factor < 1");
        self.stragglers.push(StragglerWindow {
            engine,
            from,
            until,
            factor,
        });
        self
    }

    /// Schedules a whole-domain crash: every engine in `rack` crashes at
    /// `at` (correlated failure of a host/rack/power domain).
    pub fn with_domain_crash(mut self, rack: u32, at: SimTime) -> Self {
        self.domain_crashes.push((rack, at));
        self
    }

    /// Schedules a domain-scoped brownout: every engine in `rack` runs
    /// `factor`× slower between `from` and `until`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a factor below 1.
    pub fn with_domain_brownout(
        mut self,
        rack: u32,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        assert!(from < until, "empty brownout window");
        assert!(factor >= 1.0 && factor.is_finite(), "slowdown factor < 1");
        self.brownouts.push(BrownoutWindow {
            rack,
            from,
            until,
            factor,
        });
        self
    }

    /// Schedules a coordinator↔domain partition: `rack` is unreachable
    /// between `from` and `until`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn with_partition(mut self, rack: u32, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(PartitionWindow { rack, from, until });
        self
    }

    /// Arms per-transfer PCIe failures with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1` (a probability of 1 would livelock the
    /// link).
    pub fn with_pcie_fail_prob(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "pcie_fail_prob must be in [0, 1)");
        self.pcie_fail_prob = p;
        self
    }

    /// Overrides the failure-detection timeout.
    pub fn with_detect_timeout(mut self, timeout: SimDuration) -> Self {
        self.detect_timeout = timeout;
        self
    }

    /// Overrides the retry policy (base backoff, cap, budget).
    pub fn with_retry_policy(
        mut self,
        backoff: SimDuration,
        max_backoff: SimDuration,
        max_retries: u32,
    ) -> Self {
        self.retry_backoff = backoff;
        self.max_backoff = max_backoff;
        self.max_retries = max_retries;
        self
    }

    /// Arms SLO-aware shedding at `multiple × SLO` of estimated TTFT.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite multiple.
    pub fn with_shedding(mut self, multiple: f64) -> Self {
        assert!(multiple > 0.0 && multiple.is_finite(), "bad shed multiple");
        self.shed_multiple = multiple;
        self
    }

    /// Arms provisioning faults: scale-ups land `delay` late and fail
    /// outright with probability `fail_prob`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fail_prob < 1`.
    pub fn with_provisioning(mut self, delay: SimDuration, fail_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fail_prob),
            "provision_fail_prob must be in [0, 1)"
        );
        self.provision_delay = delay;
        self.provision_fail_prob = fail_prob;
        self
    }

    /// The capped exponential backoff before retry `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(20);
        let backed =
            SimDuration::from_nanos(self.retry_backoff.as_nanos().saturating_mul(1u64 << exp));
        backed.min(self.max_backoff)
    }

    /// True when shedding is armed.
    pub fn sheds(&self) -> bool {
        self.shed_multiple > 0.0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::new()
    }
}

/// One scheduled fault popped off the [`FaultTimeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The engine halts; the failure detector fires `detect_timeout`
    /// later and recovery begins.
    Crash(u32),
    /// The engine's steps slow down by the factor from now on.
    StragglerStart(u32, f64),
    /// The straggler window ends; the engine runs at full speed again.
    StragglerEnd(u32),
    /// Every engine in the rack crashes at once.
    DomainCrash(u32),
    /// Every engine in the rack slows down by the factor from now on.
    BrownoutStart(u32, f64),
    /// The brownout lifts; the rack runs at full speed again.
    BrownoutEnd(u32),
    /// The rack becomes unreachable: traffic routes around it and
    /// in-flight victims enter the retry ledger, due at the carried heal
    /// instant or their retry timeout, whichever is sooner.
    PartitionStart(u32, SimTime),
    /// The partition heals: the rack's engines rejoin the fleet intact.
    PartitionEnd(u32),
}

/// The spec's scheduled faults compiled into one sorted, replayable event
/// list. Compilation is pure, so every execution mode sees the identical
/// timeline.
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    events: Vec<(SimTime, FaultAction)>,
    next: usize,
}

impl FaultTimeline {
    /// Compiles the spec's crashes, straggler windows and correlated
    /// domain faults, sorted by time (stable: spec order breaks ties, and
    /// the correlated kinds are appended after the PR 7 kinds so legacy
    /// same-instant orderings are unchanged).
    pub fn compile(spec: &FaultSpec) -> Self {
        let mut events = Vec::with_capacity(
            spec.crashes.len()
                + 2 * spec.stragglers.len()
                + spec.domain_crashes.len()
                + 2 * spec.brownouts.len()
                + 2 * spec.partitions.len(),
        );
        for w in &spec.stragglers {
            events.push((w.from, FaultAction::StragglerStart(w.engine, w.factor)));
            events.push((w.until, FaultAction::StragglerEnd(w.engine)));
        }
        for &(engine, at) in &spec.crashes {
            events.push((at, FaultAction::Crash(engine)));
        }
        for &(rack, at) in &spec.domain_crashes {
            events.push((at, FaultAction::DomainCrash(rack)));
        }
        for w in &spec.brownouts {
            events.push((w.from, FaultAction::BrownoutStart(w.rack, w.factor)));
            events.push((w.until, FaultAction::BrownoutEnd(w.rack)));
        }
        for w in &spec.partitions {
            events.push((w.from, FaultAction::PartitionStart(w.rack, w.until)));
            events.push((w.until, FaultAction::PartitionEnd(w.rack)));
        }
        events.sort_by_key(|&(t, _)| t);
        FaultTimeline { events, next: 0 }
    }

    /// Time of the next unobserved scheduled fault.
    pub fn peek(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|&(t, _)| t)
    }

    /// Pops the next fault if it is due at or before `t`.
    pub fn pop_due(&mut self, t: SimTime) -> Option<FaultAction> {
        match self.events.get(self.next) {
            Some(&(at, action)) if at <= t => {
                self.next += 1;
                Some(action)
            }
            _ => None,
        }
    }

    /// Number of scheduled faults not yet observed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

/// splitmix64 finaliser: a high-quality 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One deterministic uniform roll in `[0, 1)` from `(seed, stream,
/// counter)`. Pure: the same triple always rolls the same value, on any
/// thread, in any execution mode.
pub fn fault_roll(seed: u64, stream: u64, counter: u64) -> f64 {
    let h = mix64(seed ^ mix64(stream ^ mix64(counter)));
    // 53 mantissa bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Engine-local PCIe fault injector: a per-stream counter over
/// [`fault_roll`]. Each transfer attempt consumes one counter tick;
/// because engine state is thread-confined between barriers, the sequence
/// of ticks — and therefore of failures — is identical across serial and
/// parallel execution.
#[derive(Debug, Clone)]
pub struct PcieFaultInjector {
    seed: u64,
    stream: u64,
    counter: u64,
    prob: f64,
    failures: u64,
}

impl PcieFaultInjector {
    /// Creates the injector for one engine's transfer stream.
    pub fn new(seed: u64, stream: u64, prob: f64) -> Self {
        PcieFaultInjector {
            seed,
            stream,
            counter: 0,
            prob,
            failures: 0,
        }
    }

    /// Rolls one transfer attempt; true means the transfer fails and must
    /// be re-issued.
    pub fn transfer_fails(&mut self) -> bool {
        let roll = fault_roll(self.seed, self.stream, self.counter);
        self.counter += 1;
        let failed = roll < self.prob;
        if failed {
            self.failures += 1;
        }
        failed
    }

    /// Transfer failures rolled so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_schedule_nothing() {
        let s = FaultSpec::new();
        assert!(s.crashes.is_empty() && s.stragglers.is_empty());
        assert_eq!(s.pcie_fail_prob, 0.0);
        assert!(!s.sheds());
        assert_eq!(s.max_retries, 3);
        assert_eq!(FaultTimeline::compile(&s).remaining(), 0);
    }

    #[test]
    fn builders_schedule_and_arm() {
        let s = FaultSpec::new()
            .with_seed(7)
            .with_crash(1, SimTime::from_secs_f64(3.0))
            .with_straggler(
                0,
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(2.0),
                4.0,
            )
            .with_pcie_fail_prob(0.1)
            .with_detect_timeout(SimDuration::from_millis(250))
            .with_retry_policy(SimDuration::from_millis(10), SimDuration::from_secs(1), 5)
            .with_shedding(3.0)
            .with_provisioning(SimDuration::from_secs(1), 0.25);
        assert_eq!(s.seed, 7);
        assert_eq!(s.crashes, vec![(1, SimTime::from_secs_f64(3.0))]);
        assert_eq!(s.stragglers.len(), 1);
        assert_eq!(s.pcie_fail_prob, 0.1);
        assert_eq!(s.detect_timeout, SimDuration::from_millis(250));
        assert_eq!(s.max_retries, 5);
        assert!(s.sheds());
        assert_eq!(s.provision_delay, SimDuration::from_secs(1));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let s = FaultSpec::new().with_retry_policy(
            SimDuration::from_millis(50),
            SimDuration::from_millis(300),
            10,
        );
        assert_eq!(s.backoff_for(1), SimDuration::from_millis(50));
        assert_eq!(s.backoff_for(2), SimDuration::from_millis(100));
        assert_eq!(s.backoff_for(3), SimDuration::from_millis(200));
        assert_eq!(s.backoff_for(4), SimDuration::from_millis(300), "capped");
        assert_eq!(s.backoff_for(60), SimDuration::from_millis(300));
    }

    #[test]
    fn timeline_sorted_and_replayable() {
        let s = FaultSpec::new()
            .with_crash(2, SimTime::from_secs_f64(5.0))
            .with_straggler(
                0,
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(6.0),
                2.0,
            );
        let mut t = FaultTimeline::compile(&s);
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.peek(), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(1.0)),
            Some(FaultAction::StragglerStart(0, 2.0))
        );
        assert_eq!(t.pop_due(SimTime::from_secs_f64(1.0)), None, "not yet due");
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(5.0)),
            Some(FaultAction::Crash(2))
        );
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(6.0)),
            Some(FaultAction::StragglerEnd(0))
        );
        assert_eq!(t.peek(), None);
    }

    #[test]
    fn correlated_faults_compile_onto_the_timeline() {
        let s = FaultSpec::new()
            .with_domain_crash(1, SimTime::from_secs_f64(4.0))
            .with_domain_brownout(
                0,
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(2.0),
                3.0,
            )
            .with_partition(1, SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(7.0));
        assert_eq!(s.domain_crashes, vec![(1, SimTime::from_secs_f64(4.0))]);
        assert_eq!(s.brownouts.len(), 1);
        assert_eq!(s.partitions.len(), 1);
        let mut t = FaultTimeline::compile(&s);
        assert_eq!(t.remaining(), 5);
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(1.0)),
            Some(FaultAction::BrownoutStart(0, 3.0))
        );
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(2.0)),
            Some(FaultAction::BrownoutEnd(0))
        );
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(4.0)),
            Some(FaultAction::DomainCrash(1))
        );
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(5.0)),
            Some(FaultAction::PartitionStart(1, SimTime::from_secs_f64(7.0))),
            "partition start carries its heal instant"
        );
        assert_eq!(
            t.pop_due(SimTime::from_secs_f64(7.0)),
            Some(FaultAction::PartitionEnd(1))
        );
    }

    #[test]
    fn same_instant_correlated_faults_sort_after_legacy_kinds() {
        // A crash and a domain crash at the same instant: the stable sort
        // must keep the PR 7 kind first, preserving legacy tie orderings.
        let at = SimTime::from_secs_f64(2.0);
        let s = FaultSpec::new().with_domain_crash(9, at).with_crash(0, at);
        let mut t = FaultTimeline::compile(&s);
        assert_eq!(t.pop_due(at), Some(FaultAction::Crash(0)));
        assert_eq!(t.pop_due(at), Some(FaultAction::DomainCrash(9)));
    }

    #[test]
    #[should_panic(expected = "empty partition window")]
    fn rejects_empty_partition_window() {
        let at = SimTime::from_secs_f64(1.0);
        let _ = FaultSpec::new().with_partition(0, at, at);
    }

    #[test]
    fn rolls_are_pure_and_uniform_ish() {
        assert_eq!(fault_roll(1, 2, 3), fault_roll(1, 2, 3));
        assert_ne!(fault_roll(1, 2, 3), fault_roll(1, 2, 4));
        assert_ne!(fault_roll(1, 2, 3), fault_roll(1, 3, 3));
        let n = 10_000;
        let hits = (0..n).filter(|&c| fault_roll(42, 0, c) < 0.2).count() as f64;
        let rate = hits / n as f64;
        assert!((0.17..0.23).contains(&rate), "rate {rate} far from 0.2");
    }

    #[test]
    fn pcie_injector_is_deterministic_per_stream() {
        let run = |stream: u64| {
            let mut inj = PcieFaultInjector::new(9, stream, 0.3);
            (0..100).map(|_| inj.transfer_fails()).collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1), "streams are independent");
        let mut inj = PcieFaultInjector::new(9, 0, 0.3);
        for _ in 0..100 {
            inj.transfer_fails();
        }
        assert!(inj.failures() > 10 && inj.failures() < 60);
    }

    #[test]
    #[should_panic(expected = "empty straggler window")]
    fn rejects_empty_straggler_window() {
        let _ = FaultSpec::new().with_straggler(
            0,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(2.0),
            2.0,
        );
    }

    #[test]
    #[should_panic(expected = "pcie_fail_prob")]
    fn rejects_certain_pcie_failure() {
        let _ = FaultSpec::new().with_pcie_fail_prob(1.0);
    }
}
