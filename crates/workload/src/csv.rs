//! CSV import/export for traces.
//!
//! Traces serialise to a simple five-column CSV so they can be inspected,
//! plotted, or swapped with externally prepared request logs (e.g. a
//! down-sampled production trace):
//!
//! ```csv
//! arrival_s,input_tokens,output_tokens,adapter_id,rank
//! 0.125,384,62,17,32
//! ```

use crate::request::{Request, RequestId};
use crate::trace::Trace;
use chameleon_models::{AdapterId, AdapterRank};
use chameleon_simcore::SimTime;
use std::fmt::Write as _;

/// Error from parsing a CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Header row written by [`to_csv`].
pub const CSV_HEADER: &str = "arrival_s,input_tokens,output_tokens,adapter_id,rank";

/// Serialises a trace to CSV (with header).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(32 * trace.len() + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in trace {
        writeln!(
            out,
            "{:.6},{},{},{},{}",
            r.arrival().as_secs_f64(),
            r.input_tokens(),
            r.output_tokens(),
            r.adapter().0,
            r.rank().get(),
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parses a CSV trace (header optional). Request ids are assigned by row
/// order.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for malformed rows (wrong column count,
/// non-numeric fields, zero lengths, negative arrival times).
pub fn from_csv(text: &str) -> Result<Trace, ParseTraceError> {
    let mut requests = Vec::new();
    let mut id: u64 = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed == CSV_HEADER || trimmed.starts_with("arrival") {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 5 {
            return Err(ParseTraceError {
                line,
                message: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let err = |message: String| ParseTraceError { line, message };
        let arrival: f64 = fields[0]
            .parse()
            .map_err(|e| err(format!("bad arrival: {e}")))?;
        if !arrival.is_finite() || arrival < 0.0 {
            return Err(err(format!("invalid arrival time {arrival}")));
        }
        let input: u32 = fields[1]
            .parse()
            .map_err(|e| err(format!("bad input_tokens: {e}")))?;
        let output: u32 = fields[2]
            .parse()
            .map_err(|e| err(format!("bad output_tokens: {e}")))?;
        let adapter: u32 = fields[3]
            .parse()
            .map_err(|e| err(format!("bad adapter_id: {e}")))?;
        let rank: u32 = fields[4]
            .parse()
            .map_err(|e| err(format!("bad rank: {e}")))?;
        if input == 0 || output == 0 || rank == 0 {
            return Err(err("lengths and rank must be positive".into()));
        }
        requests.push(Request::new(
            RequestId(id),
            SimTime::from_secs_f64(arrival),
            input,
            output,
            AdapterId(adapter),
            AdapterRank::new(rank),
        ));
        id += 1;
    }
    Ok(Trace::new(requests))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            Request::new(
                RequestId(0),
                SimTime::from_secs_f64(0.5),
                128,
                16,
                AdapterId(3),
                AdapterRank::new(32),
            ),
            Request::new(
                RequestId(1),
                SimTime::from_secs_f64(1.25),
                64,
                8,
                AdapterId(7),
                AdapterRank::new(8),
            ),
        ])
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let csv = to_csv(&t);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), 2);
        let a = parsed.requests()[0];
        assert_eq!(a.input_tokens(), 128);
        assert_eq!(a.adapter(), AdapterId(3));
        assert_eq!(a.rank().get(), 32);
        assert!((a.arrival().as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let csv = format!("{CSV_HEADER}\n\n0.1,10,5,0,8\n\n");
        let t = from_csv(&csv).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn headerless_input_accepted() {
        let t = from_csv("0.1,10,5,0,8\n0.2,20,6,1,16\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_csv("0.1,10,5,0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("5 fields"));

        let err = from_csv("0.1,10,5,0,8\nnope,1,1,0,8\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_zero_lengths_and_negative_arrivals() {
        assert!(from_csv("0.1,0,5,0,8\n").is_err());
        assert!(from_csv("0.1,10,0,0,8\n").is_err());
        assert!(from_csv("-1.0,10,5,0,8\n").is_err());
    }

    #[test]
    fn parsed_rows_resort_by_arrival() {
        let t = from_csv("5.0,10,5,0,8\n1.0,20,6,1,16\n").unwrap();
        assert_eq!(t.requests()[0].input_tokens(), 20);
    }
}
