//! Synthetic production-like trace generation.
//!
//! The paper drives its evaluation with the Splitwise conversation trace
//! (input/output lengths) replayed under Poisson arrivals (§5.1), plus
//! WildChat-1M and LMSYS-Chat-1M variants with "generally smaller input and
//! output lengths" (§5.4). We reproduce those as log-normal length models
//! whose medians/shapes match the published characteristics, scaled down by
//! a constant factor exactly as §5.1 does for the authors' 48 GB testbed.

use crate::request::{Request, RequestId};
use crate::trace::Trace;
use chameleon_models::AdapterPool;
use chameleon_simcore::dist::{Exponential, LogNormal, Sample};
use chameleon_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Log-normal token-length model with clamping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenLengthModel {
    /// Median of the distribution, in tokens.
    pub median: f64,
    /// Shape (sigma of the underlying normal); larger = heavier tail.
    pub sigma: f64,
    /// Lower clamp in tokens.
    pub min: u32,
    /// Upper clamp in tokens.
    pub max: u32,
}

impl TokenLengthModel {
    /// Draws one length.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let x = LogNormal::from_median(self.median, self.sigma).sample(rng);
        (x.round() as u32).clamp(self.min, self.max)
    }
}

/// Input/output length model of a trace family.
///
/// The concrete numbers are the §5.1-style scaled-down equivalents of the
/// three public traces; all three keep the heavy-tail signature of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthModel {
    /// Azure/Splitwise conversation trace [41]: long prompts, long heavy
    /// tails. The paper's default workload.
    SplitwiseLike,
    /// WildChat-1M [65]: "generally smaller input and output lengths".
    WildChatLike,
    /// LMSYS-Chat-1M [67]: similar, slightly shorter still.
    LmsysLike,
    /// Fully custom length models.
    Custom {
        /// Prompt-length distribution.
        input: TokenLengthModel,
        /// Output-length distribution.
        output: TokenLengthModel,
    },
}

impl LengthModel {
    /// The input-length distribution of this family.
    pub fn input_model(&self) -> TokenLengthModel {
        match self {
            LengthModel::SplitwiseLike => TokenLengthModel {
                median: 512.0,
                sigma: 0.9,
                min: 16,
                max: 4096,
            },
            LengthModel::WildChatLike => TokenLengthModel {
                median: 180.0,
                sigma: 0.8,
                min: 8,
                max: 2048,
            },
            LengthModel::LmsysLike => TokenLengthModel {
                median: 140.0,
                sigma: 0.8,
                min: 8,
                max: 2048,
            },
            LengthModel::Custom { input, .. } => *input,
        }
    }

    /// The output-length distribution of this family.
    pub fn output_model(&self) -> TokenLengthModel {
        match self {
            LengthModel::SplitwiseLike => TokenLengthModel {
                median: 128.0,
                sigma: 0.9,
                min: 8,
                max: 2048,
            },
            LengthModel::WildChatLike => TokenLengthModel {
                median: 100.0,
                sigma: 0.7,
                min: 4,
                max: 1024,
            },
            LengthModel::LmsysLike => TokenLengthModel {
                median: 90.0,
                sigma: 0.7,
                min: 4,
                max: 1024,
            },
            LengthModel::Custom { output, .. } => *output,
        }
    }

    /// Human-readable family name.
    pub fn name(&self) -> &'static str {
        match self {
            LengthModel::SplitwiseLike => "Splitwise",
            LengthModel::WildChatLike => "WildChat",
            LengthModel::LmsysLike => "LMSYS",
            LengthModel::Custom { .. } => "Custom",
        }
    }
}

/// A bounded interval during which the arrival rate is multiplied, used to
/// reproduce the load burst the §5.4 predictor study relies on ("during a
/// load burst (at around 300s) ...").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstEpisode {
    /// Burst start.
    pub start: SimTime,
    /// Burst end (exclusive).
    pub end: SimTime,
    /// Rate multiplier during the burst (e.g. 3.0 = 3× the base rate).
    pub rate_multiplier: f64,
}

/// Arrival process: Poisson with optional burst episodes and an optional
/// diurnal (sinusoidal) modulation — LLM inference load shows strong
/// day/night patterns (DynamoLLM's characterisation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Base request rate, requests per second.
    pub rps: f64,
    /// Burst episodes (may be empty). Overlapping episodes multiply.
    pub bursts: Vec<BurstEpisode>,
    /// Diurnal modulation: `(amplitude, period_seconds)`. The rate becomes
    /// `rps · (1 + amplitude · sin(2π t / period))`; amplitude must be in
    /// `[0, 1)` so the rate stays positive.
    pub diurnal: Option<(f64, f64)>,
}

impl ArrivalModel {
    /// Plain Poisson arrivals at `rps` requests/second (the paper's §5.1
    /// default).
    pub fn poisson(rps: f64) -> Self {
        assert!(rps.is_finite() && rps > 0.0, "invalid rps {rps}");
        ArrivalModel {
            rps,
            bursts: Vec::new(),
            diurnal: None,
        }
    }

    /// Adds sinusoidal day/night modulation.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is outside `[0, 1)` or `period_secs` is not
    /// positive.
    pub fn with_diurnal(mut self, amplitude: f64, period_secs: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude {amplitude}");
        assert!(period_secs > 0.0, "period {period_secs}");
        self.diurnal = Some((amplitude, period_secs));
        self
    }

    /// Adds a burst episode.
    pub fn with_burst(mut self, burst: BurstEpisode) -> Self {
        assert!(burst.end > burst.start, "empty burst window");
        assert!(burst.rate_multiplier > 0.0);
        self.bursts.push(burst);
        self
    }

    /// Instantaneous rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut rate = self.rps;
        for b in &self.bursts {
            if t >= b.start && t < b.end {
                rate *= b.rate_multiplier;
            }
        }
        if let Some((amp, period)) = self.diurnal {
            let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / period;
            rate *= 1.0 + amp * phase.sin();
        }
        rate
    }
}

/// Generates traces: arrivals × lengths × adapter assignment.
///
/// ```
/// use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};
/// use chameleon_models::{AdapterPool, LlmSpec, PoolConfig};
/// use chameleon_simcore::{SimRng, SimTime};
///
/// let pool = AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(100));
/// let gen = TraceGenerator::new(LengthModel::SplitwiseLike, ArrivalModel::poisson(8.0));
/// let mut rng = SimRng::seed(1);
/// let trace = gen.generate(&pool, SimTime::from_secs_f64(60.0), &mut rng);
/// assert!(trace.len() > 300); // ~480 expected at 8 RPS over 60 s
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    lengths: LengthModel,
    arrivals: ArrivalModel,
}

impl TraceGenerator {
    /// Creates a generator from a length family and an arrival model.
    pub fn new(lengths: LengthModel, arrivals: ArrivalModel) -> Self {
        TraceGenerator { lengths, arrivals }
    }

    /// The length family.
    pub fn lengths(&self) -> &LengthModel {
        &self.lengths
    }

    /// The arrival model.
    pub fn arrivals(&self) -> &ArrivalModel {
        &self.arrivals
    }

    /// Generates all requests arriving before `horizon`, drawing adapters
    /// from `pool` (rank popularity × within-rank popularity as configured
    /// in the pool).
    ///
    /// Bursty episodes are realised by thinning-style rate modulation: the
    /// next inter-arrival gap is drawn at the instantaneous rate of the
    /// current time, which is exact for piecewise-constant rates at the
    /// granularity of one arrival.
    pub fn generate(&self, pool: &AdapterPool, horizon: SimTime, rng: &mut SimRng) -> Trace {
        let input_model = self.lengths.input_model();
        let output_model = self.lengths.output_model();
        let mut requests = Vec::new();
        let mut now = SimTime::ZERO;
        let mut id: u64 = 0;
        loop {
            let rate = self.arrivals.rate_at(now);
            let gap = Exponential::new(rate).sample(rng);
            now += SimDuration::from_secs_f64(gap);
            if now >= horizon {
                break;
            }
            let adapter = pool.sample(rng);
            requests.push(Request::new(
                RequestId(id),
                now,
                input_model.sample(rng),
                output_model.sample(rng),
                adapter.id(),
                adapter.rank(),
            ));
            id += 1;
        }
        Trace::new(requests)
    }

    /// Generates exactly `n` requests (horizon unbounded).
    pub fn generate_n(&self, pool: &AdapterPool, n: usize, rng: &mut SimRng) -> Trace {
        let input_model = self.lengths.input_model();
        let output_model = self.lengths.output_model();
        let mut requests = Vec::with_capacity(n);
        let mut now = SimTime::ZERO;
        for id in 0..n {
            let rate = self.arrivals.rate_at(now);
            let gap = Exponential::new(rate).sample(rng);
            now += SimDuration::from_secs_f64(gap);
            let adapter = pool.sample(rng);
            requests.push(Request::new(
                RequestId(id as u64),
                now,
                input_model.sample(rng),
                output_model.sample(rng),
                adapter.id(),
                adapter.rank(),
            ));
        }
        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{LlmSpec, PoolConfig};

    fn pool() -> AdapterPool {
        AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(100))
    }

    #[test]
    fn generates_calibrated_rate() {
        let gen = TraceGenerator::new(LengthModel::SplitwiseLike, ArrivalModel::poisson(10.0));
        let mut rng = SimRng::seed(1);
        let t = gen.generate(&pool(), SimTime::from_secs_f64(200.0), &mut rng);
        let rps = t.summary().mean_rps;
        assert!((rps - 10.0).abs() < 1.0, "empirical rps {rps}");
    }

    #[test]
    fn splitwise_is_heavier_than_wildchat() {
        let p = pool();
        let mut rng = SimRng::seed(2);
        let sw = TraceGenerator::new(LengthModel::SplitwiseLike, ArrivalModel::poisson(5.0))
            .generate_n(&p, 3000, &mut rng);
        let wc = TraceGenerator::new(LengthModel::WildChatLike, ArrivalModel::poisson(5.0))
            .generate_n(&p, 3000, &mut rng);
        let (s, w) = (sw.summary(), wc.summary());
        assert!(
            s.mean_input > 1.5 * w.mean_input,
            "splitwise {} vs wildchat {}",
            s.mean_input,
            w.mean_input
        );
        assert!(s.mean_output > w.mean_output);
    }

    #[test]
    fn lengths_are_heavy_tailed() {
        // Heavy tail: p99 much larger than the median (Figure 7's shape).
        let p = pool();
        let mut rng = SimRng::seed(3);
        let t = TraceGenerator::new(LengthModel::SplitwiseLike, ArrivalModel::poisson(5.0))
            .generate_n(&p, 5000, &mut rng);
        let mut inputs: Vec<f64> = t.iter().map(|r| r.input_tokens() as f64).collect();
        inputs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = inputs[inputs.len() / 2];
        let p99 = inputs[(inputs.len() as f64 * 0.99) as usize];
        assert!(p99 > 3.0 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn burst_raises_local_rate() {
        let arrivals = ArrivalModel::poisson(5.0).with_burst(BurstEpisode {
            start: SimTime::from_secs_f64(100.0),
            end: SimTime::from_secs_f64(150.0),
            rate_multiplier: 4.0,
        });
        assert_eq!(arrivals.rate_at(SimTime::from_secs_f64(50.0)), 5.0);
        assert_eq!(arrivals.rate_at(SimTime::from_secs_f64(120.0)), 20.0);
        assert_eq!(arrivals.rate_at(SimTime::from_secs_f64(150.0)), 5.0);

        let gen = TraceGenerator::new(LengthModel::SplitwiseLike, arrivals);
        let mut rng = SimRng::seed(4);
        let t = gen.generate(&pool(), SimTime::from_secs_f64(200.0), &mut rng);
        let in_burst = t
            .iter()
            .filter(|r| {
                r.arrival() >= SimTime::from_secs_f64(100.0)
                    && r.arrival() < SimTime::from_secs_f64(150.0)
            })
            .count() as f64
            / 50.0;
        let outside = t
            .iter()
            .filter(|r| r.arrival() < SimTime::from_secs_f64(100.0))
            .count() as f64
            / 100.0;
        assert!(
            in_burst > 2.0 * outside,
            "burst rps {in_burst} vs base {outside}"
        );
    }

    #[test]
    fn diurnal_modulation_shapes_rate() {
        let m = ArrivalModel::poisson(10.0).with_diurnal(0.5, 400.0);
        // Peak at a quarter period, trough at three quarters.
        assert!((m.rate_at(SimTime::from_secs_f64(100.0)) - 15.0).abs() < 1e-9);
        assert!((m.rate_at(SimTime::from_secs_f64(300.0)) - 5.0).abs() < 1e-9);
        assert!((m.rate_at(SimTime::ZERO) - 10.0).abs() < 1e-9);

        // Empirically: more arrivals in the first half-period than the second.
        let gen = TraceGenerator::new(LengthModel::LmsysLike, m);
        let mut rng = SimRng::seed(8);
        let t = gen.generate(&pool(), SimTime::from_secs_f64(400.0), &mut rng);
        let first = t
            .iter()
            .filter(|r| r.arrival() < SimTime::from_secs_f64(200.0))
            .count();
        let second = t.len() - first;
        assert!(first > second, "diurnal peak ignored: {first} vs {second}");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_full_amplitude() {
        let _ = ArrivalModel::poisson(1.0).with_diurnal(1.0, 10.0);
    }

    #[test]
    fn adapters_cover_pool() {
        let p = pool();
        let mut rng = SimRng::seed(5);
        let t = TraceGenerator::new(LengthModel::LmsysLike, ArrivalModel::poisson(20.0))
            .generate_n(&p, 5000, &mut rng);
        let distinct: std::collections::HashSet<_> = t.iter().map(|r| r.adapter()).collect();
        // Power-law within rank still touches most of the 100 adapters in
        // 5000 draws.
        assert!(distinct.len() > 60, "only {} adapters seen", distinct.len());
        // Ranks are attached consistently with the pool records.
        for r in t.iter().take(200) {
            assert_eq!(p.get(r.adapter()).unwrap().rank(), r.rank());
        }
    }

    #[test]
    fn generate_n_is_exact_and_deterministic() {
        let p = pool();
        let run = |seed| {
            let mut rng = SimRng::seed(seed);
            TraceGenerator::new(LengthModel::WildChatLike, ArrivalModel::poisson(8.0))
                .generate_n(&p, 100, &mut rng)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn custom_model_is_respected() {
        let custom = LengthModel::Custom {
            input: TokenLengthModel {
                median: 10.0,
                sigma: 0.0,
                min: 10,
                max: 10,
            },
            output: TokenLengthModel {
                median: 5.0,
                sigma: 0.0,
                min: 5,
                max: 5,
            },
        };
        let mut rng = SimRng::seed(6);
        let t = TraceGenerator::new(custom, ArrivalModel::poisson(5.0)).generate_n(
            &pool(),
            50,
            &mut rng,
        );
        assert!(t
            .iter()
            .all(|r| r.input_tokens() == 10 && r.output_tokens() == 5));
        assert_eq!(custom.name(), "Custom");
    }
}
