//! Ordered request traces.

use crate::request::Request;
use chameleon_simcore::stats::OnlineStats;
use chameleon_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// A time-ordered sequence of requests driving one experiment.
///
/// Invariant: requests are sorted by arrival time (ties keep insertion
/// order), so the simulator can feed them to the event queue directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

/// Length and arrival summary of a trace, for sanity checks and reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of requests.
    pub count: usize,
    /// Mean prompt length in tokens.
    pub mean_input: f64,
    /// Mean output length in tokens.
    pub mean_output: f64,
    /// Largest prompt in the trace.
    pub max_input: u32,
    /// Largest output in the trace.
    pub max_output: u32,
    /// Trace horizon: arrival of the last request.
    pub horizon: SimTime,
    /// Average arrival rate over the horizon, in requests/second.
    pub mean_rps: f64,
}

impl Trace {
    /// Builds a trace, sorting by arrival (stable).
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.arrival());
        Trace { requests }
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over requests in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Applies the §5.1 constant-factor length scaling to every request:
    /// "we have scaled down the input and output lengths in these
    /// large-scale system traces using a constant factor".
    pub fn scale_lengths(&self, factor: f64) -> Trace {
        Trace {
            requests: self
                .requests
                .iter()
                .map(|r| r.scale_lengths(factor))
                .collect(),
        }
    }

    /// Keeps only requests arriving before `cutoff`.
    pub fn truncate_at(&self, cutoff: SimTime) -> Trace {
        Trace {
            requests: self
                .requests
                .iter()
                .filter(|r| r.arrival() < cutoff)
                .copied()
                .collect(),
        }
    }

    /// Summary statistics.
    pub fn summary(&self) -> TraceSummary {
        let mut input = OnlineStats::new();
        let mut output = OnlineStats::new();
        for r in &self.requests {
            input.push(r.input_tokens() as f64);
            output.push(r.output_tokens() as f64);
        }
        let horizon = self
            .requests
            .last()
            .map(|r| r.arrival())
            .unwrap_or(SimTime::ZERO);
        let secs = horizon.as_secs_f64();
        TraceSummary {
            count: self.requests.len(),
            mean_input: input.mean(),
            mean_output: output.mean(),
            max_input: input.max().unwrap_or(0.0) as u32,
            max_output: output.max().unwrap_or(0.0) as u32,
            horizon,
            mean_rps: if secs > 0.0 {
                self.requests.len() as f64 / secs
            } else {
                0.0
            },
        }
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use chameleon_models::{AdapterId, AdapterRank};

    fn req(id: u64, at: f64, input: u32, output: u32) -> Request {
        Request::new(
            RequestId(id),
            SimTime::from_secs_f64(at),
            input,
            output,
            AdapterId(0),
            AdapterRank::new(8),
        )
    }

    #[test]
    fn sorts_by_arrival() {
        let t = Trace::new(vec![
            req(0, 3.0, 10, 10),
            req(1, 1.0, 10, 10),
            req(2, 2.0, 10, 10),
        ]);
        let order: Vec<u64> = t.iter().map(|r| r.id().0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn summary_statistics() {
        let t = Trace::new(vec![req(0, 0.0, 100, 10), req(1, 10.0, 300, 30)]);
        let s = t.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_input, 200.0);
        assert_eq!(s.mean_output, 20.0);
        assert_eq!(s.max_input, 300);
        assert_eq!(s.max_output, 30);
        assert_eq!(s.horizon.as_secs_f64(), 10.0);
        assert!((s.mean_rps - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summary() {
        let t = Trace::new(vec![]);
        assert!(t.is_empty());
        let s = t.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_rps, 0.0);
    }

    #[test]
    fn scaling_preserves_count_and_order() {
        let t = Trace::new(vec![req(0, 0.0, 100, 10), req(1, 1.0, 50, 20)]);
        let scaled = t.scale_lengths(0.5);
        assert_eq!(scaled.len(), 2);
        assert_eq!(scaled.requests()[0].input_tokens(), 50);
        assert_eq!(scaled.requests()[1].output_tokens(), 10);
    }

    #[test]
    fn truncation() {
        let t = Trace::new(vec![
            req(0, 0.0, 1, 1),
            req(1, 5.0, 1, 1),
            req(2, 9.0, 1, 1),
        ]);
        let cut = t.truncate_at(SimTime::from_secs_f64(5.0));
        assert_eq!(cut.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..5).map(|i| req(i, i as f64, 10, 10)).collect();
        assert_eq!(t.len(), 5);
        assert_eq!((&t).into_iter().count(), 5);
    }
}
