//! Inference request workloads for the Chameleon reproduction.
//!
//! * [`request`] — the [`Request`] record every layer of the system passes
//!   around: arrival time, input/output token counts and the attached LoRA
//!   adapter.
//! * [`trace`] — ordered request collections ([`Trace`]) with summary
//!   statistics and the §5.1 constant-factor length scaling.
//! * [`csv`] — CSV import/export so traces can be inspected or replaced by
//!   externally prepared request logs.
//! * [`generator`] — synthetic production-like trace generation: heavy-tailed
//!   log-normal length models matched to the Splitwise, WildChat-1M and
//!   LMSYS-Chat-1M characteristics, Poisson arrivals (§5.1) and optional
//!   burst episodes (the §5.4 predictor-sensitivity workload).

pub mod csv;
pub mod generator;
pub mod request;
pub mod trace;

pub use generator::{ArrivalModel, BurstEpisode, LengthModel, TraceGenerator};
pub use request::{Request, RequestId};
pub use trace::Trace;
