//! The inference request record.

use chameleon_models::{AdapterId, AdapterRank};
use chameleon_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Unique identifier of a request within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One LLM inference request, as admitted by the serving frontend.
///
/// The input length is known on arrival; the *true* output length is carried
/// here because the simulator must know when decoding finishes, but the
/// schedulers only ever see it through an output-length predictor — exactly
/// mirroring the paper, where output length is "determined on the fly and
/// unknown at the time a request is admitted" (§2).
///
/// ```
/// use chameleon_workload::{Request, RequestId};
/// use chameleon_models::{AdapterId, AdapterRank};
/// use chameleon_simcore::SimTime;
///
/// let r = Request::new(RequestId(0), SimTime::ZERO, 512, 64,
///                      AdapterId(3), AdapterRank::new(32));
/// assert_eq!(r.total_tokens(), 576);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    id: RequestId,
    arrival: SimTime,
    input_tokens: u32,
    output_tokens: u32,
    adapter: AdapterId,
    rank: AdapterRank,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `input_tokens` or `output_tokens` is zero: the serving
    /// systems under study always process at least one prompt token and
    /// generate at least one output token.
    pub fn new(
        id: RequestId,
        arrival: SimTime,
        input_tokens: u32,
        output_tokens: u32,
        adapter: AdapterId,
        rank: AdapterRank,
    ) -> Self {
        assert!(input_tokens > 0, "request with empty prompt");
        assert!(output_tokens > 0, "request generating no tokens");
        Request {
            id,
            arrival,
            input_tokens,
            output_tokens,
            adapter,
            rank,
        }
    }

    /// The request's identity.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Arrival instant at the serving frontend.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Prompt length in tokens (known at admission).
    pub fn input_tokens(&self) -> u32 {
        self.input_tokens
    }

    /// True number of output tokens (hidden from schedulers; see type docs).
    pub fn output_tokens(&self) -> u32 {
        self.output_tokens
    }

    /// The LoRA adapter this request runs with.
    pub fn adapter(&self) -> AdapterId {
        self.adapter
    }

    /// The rank of that adapter (denormalised for convenience; identical to
    /// the pool's record).
    pub fn rank(&self) -> AdapterRank {
        self.rank
    }

    /// Input plus output tokens.
    pub fn total_tokens(&self) -> u32 {
        self.input_tokens + self.output_tokens
    }

    /// Returns a copy with both lengths multiplied by `factor` (≥ 1 token
    /// each), used by the §5.1 constant-factor trace scaling.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is non-positive or not finite.
    pub fn scale_lengths(&self, factor: f64) -> Request {
        assert!(factor.is_finite() && factor > 0.0, "bad scale {factor}");
        let scale = |t: u32| (((t as f64) * factor).round() as u32).max(1);
        Request {
            input_tokens: scale(self.input_tokens),
            output_tokens: scale(self.output_tokens),
            ..*self
        }
    }

    /// Returns a copy arriving at a different time (used when replaying a
    /// trace at a different request rate).
    pub fn with_arrival(&self, arrival: SimTime) -> Request {
        Request { arrival, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(input: u32, output: u32) -> Request {
        Request::new(
            RequestId(1),
            SimTime::from_secs_f64(1.0),
            input,
            output,
            AdapterId(0),
            AdapterRank::new(8),
        )
    }

    #[test]
    fn accessors() {
        let r = req(100, 20);
        assert_eq!(r.id(), RequestId(1));
        assert_eq!(r.input_tokens(), 100);
        assert_eq!(r.output_tokens(), 20);
        assert_eq!(r.total_tokens(), 120);
        assert_eq!(r.arrival().as_secs_f64(), 1.0);
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let r = req(100, 20).scale_lengths(0.5);
        assert_eq!(r.input_tokens(), 50);
        assert_eq!(r.output_tokens(), 10);
        let tiny = req(1, 1).scale_lengths(0.01);
        assert_eq!(tiny.input_tokens(), 1, "never scales to zero");
        assert_eq!(tiny.output_tokens(), 1);
    }

    #[test]
    fn rebasing_arrival() {
        let r = req(5, 5).with_arrival(SimTime::from_secs_f64(9.0));
        assert_eq!(r.arrival().as_secs_f64(), 9.0);
        assert_eq!(r.input_tokens(), 5);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn zero_input_rejected() {
        let _ = req(0, 1);
    }

    #[test]
    #[should_panic(expected = "generating no tokens")]
    fn zero_output_rejected() {
        let _ = req(1, 0);
    }
}
