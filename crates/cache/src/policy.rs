//! Eviction policies for the adapter cache.
//!
//! All policies expose one operation: given the set of eviction candidates,
//! pick the next victim. Scores are computed over the *candidate set* so
//! that normalisation (the paper's frequency/recency/size factors are
//! dimensionless) is well defined.

use chameleon_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// A candidate for eviction, as seen by a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Stable index into the caller's candidate list.
    pub index: usize,
    /// Adapter weight bytes (eviction frees this much).
    pub bytes: u64,
    /// Uses within the current accounting window.
    pub frequency: u32,
    /// Last time the adapter was used.
    pub last_used: SimTime,
}

/// Which replacement algorithm the cache runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used adapter.
    Lru,
    /// Evict the least-frequently-used adapter.
    Lfu,
    /// Evict the smallest adapter (cheapest to reload) first.
    SizeOnly,
    /// The paper's compound score with equal weights (§5.3 "FairShare").
    FairShare,
    /// The paper's tuned compound score: F=0.45, R=0.10, S=0.45 (§4.2).
    ChameleonScore {
        /// Frequency weight.
        f: f64,
        /// Recency weight.
        r: f64,
        /// Size weight.
        s: f64,
    },
    /// Greedy-Dual-Size-Frequency (web-cache classic, §5.3 comparison):
    /// score = frequency · cost / size, with an aging floor.
    Gdsf,
}

impl EvictionPolicy {
    /// The paper's tuned weights (§4.2: "F, R, and S are set to 0.45, 0.10,
    /// and 0.45").
    pub fn chameleon() -> Self {
        EvictionPolicy::ChameleonScore {
            f: 0.45,
            r: 0.10,
            s: 0.45,
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::SizeOnly => "size-only",
            EvictionPolicy::FairShare => "fair-share",
            EvictionPolicy::ChameleonScore { .. } => "chameleon",
            EvictionPolicy::Gdsf => "gdsf",
        }
    }

    /// The `(F, R, S)` weights of a compound (normalised) policy, `None`
    /// for the keyed policies (LRU/LFU/size/GDSF) whose victim order
    /// admits a stable per-entry key.
    pub fn compound_weights(&self) -> Option<(f64, f64, f64)> {
        match self {
            EvictionPolicy::FairShare => {
                let w = 1.0 / 3.0;
                Some((w, w, w))
            }
            EvictionPolicy::ChameleonScore { f, r, s } => Some((*f, *r, *s)),
            _ => None,
        }
    }

    /// Picks the victim among `candidates`; returns its `index` field.
    ///
    /// `now` anchors recency; `gdsf_floor` is the GreedyDual aging value
    /// maintained by the cache (ignored by other policies).
    ///
    /// Returns `None` when there are no candidates.
    pub fn pick_victim(
        &self,
        candidates: &[Candidate],
        now: SimTime,
        gdsf_floor: f64,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            EvictionPolicy::Lru => candidates
                .iter()
                .min_by_key(|c| (c.last_used, c.index))
                .map(|c| c.index),
            EvictionPolicy::Lfu => candidates
                .iter()
                .min_by_key(|c| (c.frequency, c.last_used, c.index))
                .map(|c| c.index),
            EvictionPolicy::SizeOnly => candidates
                .iter()
                .min_by_key(|c| (c.bytes, c.last_used, c.index))
                .map(|c| c.index),
            EvictionPolicy::FairShare => {
                let w = 1.0 / 3.0;
                Self::pick_by_compound(candidates, now, w, w, w)
            }
            EvictionPolicy::ChameleonScore { f, r, s } => {
                Self::pick_by_compound(candidates, now, *f, *r, *s)
            }
            EvictionPolicy::Gdsf => candidates
                .iter()
                .map(|c| {
                    // Cost ≈ reload latency: a fixed per-load part plus a
                    // size-proportional part (in MB to keep magnitudes sane).
                    let mb = c.bytes as f64 / (1 << 20) as f64;
                    let cost = 8.0 + mb / 10.0;
                    let score = gdsf_floor + c.frequency as f64 * cost / mb.max(1e-9);
                    (score, c.index)
                })
                .min_by(|a, b| a.partial_cmp(b).expect("finite scores"))
                .map(|(_, i)| i),
        }
    }

    /// Compound score (§4.2): `F·freq_n + R·rec_n + S·size_n`, all factors
    /// normalised to `[0, 1]` over the candidate set; the *lowest* score is
    /// the least critical adapter and is evicted first. Higher frequency,
    /// more recent use and larger size all make an adapter more worth
    /// keeping (larger adapters are costlier to reload, §4.2's
    /// cost-awareness: "prioritize the eviction of smaller adapters").
    fn pick_by_compound(
        candidates: &[Candidate],
        now: SimTime,
        f: f64,
        r: f64,
        s: f64,
    ) -> Option<usize> {
        let max_freq = candidates.iter().map(|c| c.frequency).max()? as f64;
        let max_bytes = candidates.iter().map(|c| c.bytes).max()? as f64;
        let max_age = candidates
            .iter()
            .map(|c| now.saturating_since(c.last_used).as_secs_f64())
            .fold(0.0_f64, f64::max);
        candidates
            .iter()
            .map(|c| {
                let freq_n = if max_freq > 0.0 {
                    c.frequency as f64 / max_freq
                } else {
                    0.0
                };
                let age = now.saturating_since(c.last_used).as_secs_f64();
                let rec_n = if max_age > 0.0 {
                    1.0 - age / max_age
                } else {
                    1.0
                };
                let size_n = if max_bytes > 0.0 {
                    c.bytes as f64 / max_bytes
                } else {
                    0.0
                };
                let score = f * freq_n + r * rec_n + s * size_n;
                (score, c.index)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite scores"))
            .map(|(_, i)| i)
    }

    /// The GDSF score of a single candidate (used by the cache to advance
    /// its aging floor on eviction).
    pub fn gdsf_score(candidate: &Candidate, gdsf_floor: f64) -> f64 {
        let mb = candidate.bytes as f64 / (1 << 20) as f64;
        let cost = 8.0 + mb / 10.0;
        gdsf_floor + candidate.frequency as f64 * cost / mb.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, bytes: u64, frequency: u32, last_used_s: f64) -> Candidate {
        Candidate {
            index,
            bytes,
            frequency,
            last_used: SimTime::from_secs_f64(last_used_s),
        }
    }

    fn now() -> SimTime {
        SimTime::from_secs_f64(100.0)
    }

    #[test]
    fn lru_picks_oldest() {
        let cs = [
            cand(0, 10, 5, 90.0),
            cand(1, 10, 5, 10.0),
            cand(2, 10, 5, 50.0),
        ];
        assert_eq!(EvictionPolicy::Lru.pick_victim(&cs, now(), 0.0), Some(1));
    }

    #[test]
    fn lfu_picks_least_frequent() {
        let cs = [
            cand(0, 10, 5, 90.0),
            cand(1, 10, 1, 95.0),
            cand(2, 10, 9, 50.0),
        ];
        assert_eq!(EvictionPolicy::Lfu.pick_victim(&cs, now(), 0.0), Some(1));
    }

    #[test]
    fn size_only_picks_smallest() {
        let cs = [
            cand(0, 64, 1, 90.0),
            cand(1, 16, 9, 95.0),
            cand(2, 128, 1, 50.0),
        ];
        assert_eq!(
            EvictionPolicy::SizeOnly.pick_victim(&cs, now(), 0.0),
            Some(1)
        );
    }

    #[test]
    fn chameleon_prefers_evicting_small_cold_unpopular() {
        // Candidate 1 is small, old, and rarely used — the clear victim
        // under the tuned compound score.
        let cs = [
            cand(0, 256 << 20, 50, 99.0),
            cand(1, 16 << 20, 1, 10.0),
            cand(2, 128 << 20, 30, 95.0),
        ];
        assert_eq!(
            EvictionPolicy::chameleon().pick_victim(&cs, now(), 0.0),
            Some(1)
        );
    }

    #[test]
    fn chameleon_size_beats_recency_at_tuned_weights() {
        // Same frequency; a small recently-used adapter loses to a large
        // old one because S(0.45) ≫ R(0.10): reloading the small one is
        // cheap.
        let cs = [
            cand(0, 256 << 20, 10, 10.0), // large, old
            cand(1, 8 << 20, 10, 99.0),   // small, fresh
        ];
        assert_eq!(
            EvictionPolicy::chameleon().pick_victim(&cs, now(), 0.0),
            Some(1)
        );
        // FairShare weighs recency equally and keeps the fresh one instead.
        assert_eq!(
            EvictionPolicy::FairShare.pick_victim(&cs, now(), 0.0),
            Some(0)
        );
    }

    #[test]
    fn gdsf_evicts_large_moderate_frequency_adapters() {
        // §5.3: GDSF "aggressively evicts larger adapters with moderate use
        // frequency" because score ∝ freq/size.
        let cs = [
            cand(0, 256 << 20, 10, 90.0), // large, moderately popular
            cand(1, 8 << 20, 10, 90.0),   // small, same popularity
        ];
        assert_eq!(EvictionPolicy::Gdsf.pick_victim(&cs, now(), 0.0), Some(0));
    }

    #[test]
    fn gdsf_score_monotone_in_frequency() {
        let lo = EvictionPolicy::gdsf_score(&cand(0, 64 << 20, 1, 0.0), 0.0);
        let hi = EvictionPolicy::gdsf_score(&cand(0, 64 << 20, 10, 0.0), 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn empty_candidates_yield_none() {
        for p in [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::SizeOnly,
            EvictionPolicy::FairShare,
            EvictionPolicy::chameleon(),
            EvictionPolicy::Gdsf,
        ] {
            assert_eq!(p.pick_victim(&[], now(), 0.0), None);
        }
    }

    #[test]
    fn single_candidate_always_picked() {
        let cs = [cand(7, 10, 0, 0.0)];
        for p in [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::SizeOnly,
            EvictionPolicy::FairShare,
            EvictionPolicy::chameleon(),
            EvictionPolicy::Gdsf,
        ] {
            assert_eq!(p.pick_victim(&cs, now(), 0.0), Some(7), "{}", p.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EvictionPolicy::chameleon().name(), "chameleon");
        assert_eq!(EvictionPolicy::Lru.name(), "lru");
        assert_eq!(EvictionPolicy::Gdsf.name(), "gdsf");
    }
}
