//! The adapter cache store: residency, reference counts, dynamic sizing.
//!
//! Memory accounting convention (shared with the engine):
//!
//! * adapters with `ref_count > 0` are billed to [`Region::AdaptersInUse`];
//! * idle cached adapters (`ref_count == 0`) are billed to
//!   [`Region::AdapterCache`];
//! * `release` moves an adapter from in-use to cache (Chameleon) or frees
//!   it outright (the S-LoRA discard-on-completion baseline, §2).

use crate::policy::{Candidate, EvictionPolicy};
use chameleon_gpu::memory::{MemoryPool, OutOfMemory, Region};
use chameleon_models::{AdapterId, AdapterSpec};
use chameleon_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Aggregate cache statistics (Figure 14 and §5.3 report these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the adapter resident.
    pub hits: u64,
    /// Lookups that required a host→GPU load.
    pub misses: u64,
    /// Idle adapters evicted to make room.
    pub evictions: u64,
    /// Bytes of evicted adapter weights.
    pub bytes_evicted: u64,
    /// Bytes of adapter weights loaded from host.
    pub bytes_loaded: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    last_used: SimTime,
    frequency: u32,
    ref_count: u32,
}

/// The Chameleon Adapter Cache (§4.2) plus the in-use residency table.
///
/// One instance exists per engine ("each LLM replica has its own local
/// adapter cache").
#[derive(Debug, Clone)]
pub struct AdapterCache {
    policy: EvictionPolicy,
    /// Keep idle adapters on release (Chameleon) vs discard them (S-LoRA).
    retain_on_release: bool,
    entries: HashMap<AdapterId, Entry>,
    stats: CacheStats,
    gdsf_floor: f64,
}

impl AdapterCache {
    /// Creates a Chameleon-style cache with the given eviction policy.
    pub fn new(policy: EvictionPolicy) -> Self {
        AdapterCache {
            policy,
            retain_on_release: true,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            gdsf_floor: 0.0,
        }
    }

    /// Creates the S-LoRA baseline residency table: adapters are discarded
    /// the moment no running request uses them (§2), so nothing is ever
    /// cached idle.
    pub fn discard_mode() -> Self {
        AdapterCache {
            policy: EvictionPolicy::Lru, // irrelevant: no idle entries exist
            retain_on_release: false,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            gdsf_floor: 0.0,
        }
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Whether idle adapters are retained (Chameleon) or discarded (S-LoRA).
    pub fn retains_idle(&self) -> bool {
        self.retain_on_release
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// True when the adapter's weights are on the GPU (idle or in use).
    pub fn is_resident(&self, id: AdapterId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Reference count of a resident adapter (0 = idle in cache).
    pub fn ref_count(&self, id: AdapterId) -> Option<u32> {
        self.entries.get(&id).map(|e| e.ref_count)
    }

    /// Number of resident adapters (idle + in use).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of idle (evictable) cached adapters.
    pub fn idle_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.ref_count == 0)
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes of in-use (pinned) adapters.
    pub fn in_use_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.ref_count > 0)
            .map(|e| e.bytes)
            .sum()
    }

    /// Looks up `id` for a new request at `now`.
    ///
    /// On a hit the adapter's metadata is refreshed, its reference count
    /// incremented (moving it from the cache region to in-use if it was
    /// idle), and `true` returned. On a miss nothing changes and `false` is
    /// returned — the caller is expected to load the weights and then call
    /// [`insert_loaded`](Self::insert_loaded).
    pub fn acquire(&mut self, pool: &mut MemoryPool, id: AdapterId, now: SimTime) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                if e.ref_count == 0 {
                    pool.transfer(Region::AdapterCache, Region::AdaptersInUse, e.bytes);
                }
                e.ref_count += 1;
                e.last_used = now;
                e.frequency += 1;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Registers a freshly loaded adapter with `initial_refs` waiting
    /// requests, billing [`Region::AdaptersInUse`] (or the cache region when
    /// `initial_refs == 0`, i.e. a prefetch).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the bytes don't fit — callers should
    /// [`make_room`](Self::make_room) first.
    ///
    /// # Panics
    ///
    /// Panics if the adapter is already resident.
    pub fn insert_loaded(
        &mut self,
        pool: &mut MemoryPool,
        spec: &AdapterSpec,
        now: SimTime,
        initial_refs: u32,
    ) -> Result<(), OutOfMemory> {
        assert!(
            !self.entries.contains_key(&spec.id()),
            "{} already resident",
            spec.id()
        );
        let region = if initial_refs > 0 {
            Region::AdaptersInUse
        } else {
            Region::AdapterCache
        };
        pool.reserve(region, spec.bytes())?;
        self.entries.insert(
            spec.id(),
            Entry {
                bytes: spec.bytes(),
                last_used: now,
                frequency: initial_refs.max(1),
                ref_count: initial_refs,
            },
        );
        self.stats.bytes_loaded += spec.bytes();
        Ok(())
    }

    /// Adds a reference to an already-resident adapter (a second concurrent
    /// request for the same adapter while it is in use).
    ///
    /// # Panics
    ///
    /// Panics if the adapter is not resident.
    pub fn add_ref(&mut self, pool: &mut MemoryPool, id: AdapterId, now: SimTime) {
        let e = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("{id} not resident"));
        if e.ref_count == 0 {
            pool.transfer(Region::AdapterCache, Region::AdaptersInUse, e.bytes);
        }
        e.ref_count += 1;
        e.last_used = now;
    }

    /// Drops one reference when a request finishes. At zero references the
    /// adapter either moves into the idle cache (Chameleon) or is freed
    /// immediately (S-LoRA discard mode).
    ///
    /// # Panics
    ///
    /// Panics if the adapter is not resident or has no references.
    pub fn release(&mut self, pool: &mut MemoryPool, id: AdapterId, now: SimTime) {
        let e = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("{id} not resident"));
        assert!(e.ref_count > 0, "{id} released with zero refs");
        e.ref_count -= 1;
        e.last_used = now;
        if e.ref_count == 0 {
            let bytes = e.bytes;
            if self.retain_on_release {
                pool.transfer(Region::AdaptersInUse, Region::AdapterCache, bytes);
            } else {
                pool.release(Region::AdaptersInUse, bytes);
                self.entries.remove(&id);
            }
        }
    }

    /// Ensures at least `needed` bytes are free in `pool`, evicting idle
    /// adapters by policy. Adapters in `protected` (those of queued
    /// requests, §4.2) are spared in the first pass and evicted only if the
    /// first pass was insufficient. Referenced adapters are never evicted.
    ///
    /// Returns `true` when the pool ended with `needed` bytes free.
    pub fn make_room(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        now: SimTime,
        protected: &HashSet<AdapterId>,
    ) -> bool {
        if pool.free() >= needed {
            return true;
        }
        self.evict_pass(pool, needed, now, Some(protected));
        if pool.free() >= needed {
            return true;
        }
        // §4.2: "The adapters of queued requests are considered for
        // eviction only when memory constraints make it necessary."
        self.evict_pass(pool, needed, now, None);
        pool.free() >= needed
    }

    fn evict_pass(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        now: SimTime,
        protected: Option<&HashSet<AdapterId>>,
    ) {
        while pool.free() < needed {
            let candidates: Vec<(AdapterId, Candidate)> = self
                .entries
                .iter()
                .filter(|(id, e)| e.ref_count == 0 && protected.is_none_or(|p| !p.contains(id)))
                .enumerate()
                .map(|(i, (&id, e))| {
                    (
                        id,
                        Candidate {
                            index: i,
                            bytes: e.bytes,
                            frequency: e.frequency,
                            last_used: e.last_used,
                        },
                    )
                })
                .collect();
            let cands: Vec<Candidate> = candidates.iter().map(|&(_, c)| c).collect();
            let Some(victim_idx) = self.policy.pick_victim(&cands, now, self.gdsf_floor) else {
                return; // nothing evictable left
            };
            let (victim_id, victim) = candidates[victim_idx];
            if matches!(self.policy, EvictionPolicy::Gdsf) {
                // GreedyDual aging: the floor rises to the evicted score.
                self.gdsf_floor = EvictionPolicy::gdsf_score(&victim, self.gdsf_floor);
            }
            self.entries.remove(&victim_id);
            pool.release(Region::AdapterCache, victim.bytes);
            self.stats.evictions += 1;
            self.stats.bytes_evicted += victim.bytes;
        }
    }

    /// Halves all frequency counters — called every `T_refresh` so that
    /// popularity tracks the current workload rather than all of history.
    pub fn decay_frequencies(&mut self) {
        for e in self.entries.values_mut() {
            e.frequency /= 2;
        }
    }

    /// Ids of all idle (evictable) adapters.
    pub fn idle_adapters(&self) -> Vec<AdapterId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.ref_count == 0)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Iterates over every resident adapter (idle or in use) — the
    /// residency view cluster routers place requests on.
    pub fn resident_adapters(&self) -> impl Iterator<Item = AdapterId> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterRank, LlmSpec};
    use proptest::prelude::*;

    fn spec(id: u32, rank: u32) -> AdapterSpec {
        AdapterSpec::new(AdapterId(id), AdapterRank::new(rank), &LlmSpec::llama_7b())
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn pool_gb(gb: u64) -> MemoryPool {
        MemoryPool::new(gb << 30)
    }

    #[test]
    fn miss_then_load_then_hit() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 32); // 64 MB
        assert!(!c.acquire(&mut pool, a.id(), t(0.0)));
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        assert_eq!(pool.used(Region::AdaptersInUse), 64 << 20);
        c.release(&mut pool, a.id(), t(1.0));
        assert_eq!(pool.used(Region::AdapterCache), 64 << 20);
        assert_eq!(pool.used(Region::AdaptersInUse), 0);
        // Second request hits.
        assert!(c.acquire(&mut pool, a.id(), t(2.0)));
        assert_eq!(pool.used(Region::AdaptersInUse), 64 << 20);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discard_mode_frees_immediately() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::discard_mode();
        let a = spec(1, 32);
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        c.release(&mut pool, a.id(), t(1.0));
        assert_eq!(pool.total_used(), 0);
        assert!(!c.is_resident(a.id()));
        // Next request misses again — the S-LoRA reload tax.
        assert!(!c.acquire(&mut pool, a.id(), t(2.0)));
        assert!(!c.retains_idle());
    }

    #[test]
    fn shared_adapter_refcounting() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 16);
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        c.add_ref(&mut pool, a.id(), t(0.5));
        assert_eq!(c.ref_count(a.id()), Some(2));
        c.release(&mut pool, a.id(), t(1.0));
        assert_eq!(c.ref_count(a.id()), Some(1));
        assert_eq!(pool.used(Region::AdaptersInUse), 32 << 20);
        c.release(&mut pool, a.id(), t(2.0));
        assert_eq!(c.ref_count(a.id()), Some(0));
        assert_eq!(c.idle_bytes(), 32 << 20);
        assert_eq!(c.in_use_bytes(), 0);
    }

    #[test]
    fn make_room_evicts_idle_only() {
        // Pool sized to hold exactly three rank-32 adapters (64 MB each).
        let mut pool = MemoryPool::new(3 * (64 << 20));
        let mut c = AdapterCache::new(EvictionPolicy::Lru);
        let (a, b, d) = (spec(1, 32), spec(2, 32), spec(3, 32));
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap(); // pinned
        c.insert_loaded(&mut pool, &b, t(1.0), 0).unwrap(); // idle, older
        c.insert_loaded(&mut pool, &d, t(2.0), 0).unwrap(); // idle, newer
        assert_eq!(pool.free(), 0);
        // Need one slot: LRU evicts b (oldest idle), never a (pinned).
        assert!(c.make_room(&mut pool, 64 << 20, t(3.0), &HashSet::new()));
        assert!(!c.is_resident(b.id()));
        assert!(c.is_resident(a.id()));
        assert!(c.is_resident(d.id()));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().bytes_evicted, 64 << 20);
    }

    #[test]
    fn make_room_respects_protection_then_overrides() {
        let mut pool = MemoryPool::new(2 * (64 << 20));
        let mut c = AdapterCache::new(EvictionPolicy::Lru);
        let (a, b) = (spec(1, 32), spec(2, 32));
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        c.insert_loaded(&mut pool, &b, t(1.0), 0).unwrap();
        let protect_a: HashSet<AdapterId> = [a.id()].into();
        // One slot needed: b (unprotected) goes first even though a is older.
        assert!(c.make_room(&mut pool, 64 << 20, t(2.0), &protect_a));
        assert!(c.is_resident(a.id()));
        assert!(!c.is_resident(b.id()));
        // Two slots needed: protection must yield (§4.2 second pass).
        assert!(c.make_room(&mut pool, 2 * (64 << 20), t(3.0), &protect_a));
        assert!(!c.is_resident(a.id()));
    }

    #[test]
    fn make_room_fails_when_everything_pinned() {
        let mut pool = MemoryPool::new(64 << 20);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 32);
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        assert!(!c.make_room(&mut pool, 64 << 20, t(1.0), &HashSet::new()));
        assert!(c.is_resident(a.id()), "pinned adapter survived");
    }

    #[test]
    fn insert_requires_room() {
        let mut pool = MemoryPool::new(32 << 20);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 32); // 64 MB > 32 MB pool
        assert!(c.insert_loaded(&mut pool, &a, t(0.0), 1).is_err());
        assert!(!c.is_resident(a.id()));
    }

    #[test]
    fn frequency_decay() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::Lfu);
        let a = spec(1, 8);
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        for i in 0..7 {
            c.add_ref(&mut pool, a.id(), t(i as f64));
            c.release(&mut pool, a.id(), t(i as f64 + 0.5));
        }
        c.decay_frequencies();
        // Frequency halved but entry retained.
        assert!(c.is_resident(a.id()));
        assert_eq!(c.idle_adapters(), vec![a.id()]);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 8);
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        let _ = c.insert_loaded(&mut pool, &a, t(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "zero refs")]
    fn over_release_panics() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 8);
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        c.release(&mut pool, a.id(), t(1.0));
    }

    proptest! {
        /// Under arbitrary acquire/insert/release/make_room interleavings:
        /// pinned adapters are never evicted, pool accounting matches the
        /// cache's view, and capacity is never exceeded.
        #[test]
        fn prop_cache_invariants(ops in proptest::collection::vec((0u32..6, 0u8..4), 1..300)) {
            let mut pool = MemoryPool::new(5 * (16 << 20)); // five rank-8 slots
            let mut c = AdapterCache::new(EvictionPolicy::chameleon());
            let mut live_refs: HashMap<AdapterId, u32> = HashMap::new();
            let mut clock = 0.0;
            for (aid, op) in ops {
                clock += 0.1;
                let a = spec(aid, 8);
                match op {
                    0 => {
                        // acquire-or-load path
                        if !c.acquire(&mut pool, a.id(), t(clock)) {
                            if c.make_room(&mut pool, a.bytes(), t(clock), &HashSet::new())
                                && c.insert_loaded(&mut pool, &a, t(clock), 1).is_ok() {
                                *live_refs.entry(a.id()).or_insert(0) += 1;
                            }
                        } else {
                            *live_refs.entry(a.id()).or_insert(0) += 1;
                        }
                    }
                    1 => {
                        // release if we hold a ref
                        if live_refs.get(&a.id()).copied().unwrap_or(0) > 0 {
                            c.release(&mut pool, a.id(), t(clock));
                            *live_refs.get_mut(&a.id()).unwrap() -= 1;
                        }
                    }
                    2 => {
                        let _ = c.make_room(&mut pool, 16 << 20, t(clock), &HashSet::new());
                    }
                    _ => c.decay_frequencies(),
                }
                // Invariants.
                prop_assert!(pool.total_used() <= pool.capacity());
                prop_assert_eq!(c.idle_bytes(), pool.used(Region::AdapterCache));
                prop_assert_eq!(c.in_use_bytes(), pool.used(Region::AdaptersInUse));
                for (&id, &refs) in &live_refs {
                    if refs > 0 {
                        prop_assert!(c.is_resident(id), "pinned adapter evicted");
                        prop_assert_eq!(c.ref_count(id), Some(refs));
                    }
                }
            }
        }
    }
}
