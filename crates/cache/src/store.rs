//! The adapter cache store: residency, reference counts, dynamic sizing.
//!
//! Memory accounting convention (shared with the engine):
//!
//! * adapters with `ref_count > 0` are billed to [`Region::AdaptersInUse`];
//! * idle cached adapters (`ref_count == 0`) are billed to
//!   [`Region::AdapterCache`];
//! * `release` moves an adapter from in-use to cache (Chameleon) or frees
//!   it outright (the S-LoRA discard-on-completion baseline, §2).

use crate::policy::{Candidate, EvictionPolicy};
use chameleon_gpu::memory::{MemoryPool, OutOfMemory, Region};
use chameleon_models::{AdapterId, AdapterSpec};
use chameleon_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Aggregate cache statistics (Figure 14 and §5.3 report these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the adapter resident.
    pub hits: u64,
    /// Lookups that required a host→GPU load.
    pub misses: u64,
    /// Idle adapters evicted to make room.
    pub evictions: u64,
    /// Bytes of evicted adapter weights.
    pub bytes_evicted: u64,
    /// Bytes of adapter weights loaded from host.
    pub bytes_loaded: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache-plane decision, journalled for the telemetry overlay.
///
/// The cache crate sits below the trace crate in the dependency order, so
/// it cannot emit `TraceEvent`s directly; instead the engine drains this
/// dependency-free journal after every event it handles and re-tags the
/// entries into its own trace lane. Evict records carry the compound-score
/// *inputs* (bytes, frequency, last-used) so a trace consumer can replay
/// the eviction decision, not just observe its outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheJournalEvent {
    /// An adapter's weights were admitted (freshly loaded).
    Admit {
        /// The admitted adapter.
        adapter: AdapterId,
        /// Bytes of adapter weights.
        bytes: u64,
        /// Reference count at admission (0 = prefetch/pre-warm).
        refs: u32,
    },
    /// An idle adapter was evicted to make room.
    Evict {
        /// The evicted adapter.
        adapter: AdapterId,
        /// Bytes freed.
        bytes: u64,
        /// Frequency counter at eviction (compound-score input).
        frequency: u32,
        /// Last-use instant at eviction (compound-score input).
        last_used: SimTime,
    },
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    last_used: SimTime,
    frequency: u32,
    ref_count: u32,
}

/// An idle entry's position in the eviction-candidate index: two policy-
/// derived sort words plus the adapter id as the final, deterministic
/// tie-break. Policies whose victim choice admits a stable per-entry key
/// (LRU/LFU/size/GDSF) encode it in the leading words, so the BTree's
/// first non-protected element *is* the victim; the normalised compound
/// policies (whose scores depend on the candidate set and on `now`) use
/// `(0, 0, id)`, degrading the index to a deterministic id-ordered idle
/// set that the per-pass scan walks without touching the `HashMap`.
type IdleKey = (u64, u64, AdapterId);

fn idle_key(policy: EvictionPolicy, id: AdapterId, e: &Entry) -> IdleKey {
    match policy {
        EvictionPolicy::Lru => (e.last_used.as_nanos(), 0, id),
        EvictionPolicy::Lfu => (u64::from(e.frequency), e.last_used.as_nanos(), id),
        EvictionPolicy::SizeOnly => (e.bytes, e.last_used.as_nanos(), id),
        // The GDSF aging floor is added uniformly to every candidate, so
        // ordering by the floor-free base score is ordering by full score.
        // Base scores are finite and non-negative, making the IEEE-754 bit
        // pattern order-preserving as a u64.
        EvictionPolicy::Gdsf => {
            let base = EvictionPolicy::gdsf_score(
                &Candidate {
                    index: 0,
                    bytes: e.bytes,
                    frequency: e.frequency,
                    last_used: e.last_used,
                },
                0.0,
            );
            (base.to_bits(), 0, id)
        }
        EvictionPolicy::FairShare | EvictionPolicy::ChameleonScore { .. } => (0, 0, id),
    }
}

/// True when the policy's victim order is fully captured by [`idle_key`].
fn key_is_total(policy: EvictionPolicy) -> bool {
    !matches!(
        policy,
        EvictionPolicy::FairShare | EvictionPolicy::ChameleonScore { .. }
    )
}

/// The compound score of [`EvictionPolicy::pick_victim`], computed with
/// the identical expression (term order included, so the bits match) and
/// returned as its IEEE-754 pattern. Scores are finite and non-negative,
/// making the bit pattern order-preserving as a `u64` — the heap key of
/// the lazily rescored compound eviction pass.
#[allow(clippy::too_many_arguments)]
fn compound_score_bits(
    c: &Candidate,
    now: SimTime,
    max_freq: f64,
    max_bytes: f64,
    max_age: f64,
    f: f64,
    r: f64,
    s: f64,
) -> u64 {
    let freq_n = if max_freq > 0.0 {
        c.frequency as f64 / max_freq
    } else {
        0.0
    };
    let age = now.saturating_since(c.last_used).as_secs_f64();
    let rec_n = if max_age > 0.0 {
        1.0 - age / max_age
    } else {
        1.0
    };
    let size_n = if max_bytes > 0.0 {
        c.bytes as f64 / max_bytes
    } else {
        0.0
    };
    (f * freq_n + r * rec_n + s * size_n).to_bits()
}

/// The Chameleon Adapter Cache (§4.2) plus the in-use residency table.
///
/// One instance exists per engine ("each LLM replica has its own local
/// adapter cache").
#[derive(Debug, Clone)]
pub struct AdapterCache {
    policy: EvictionPolicy,
    /// Keep idle adapters on release (Chameleon) vs discard them (S-LoRA).
    retain_on_release: bool,
    entries: HashMap<AdapterId, Entry>,
    stats: CacheStats,
    gdsf_floor: f64,
    /// Incrementally maintained eviction-candidate index over the idle
    /// (`ref_count == 0`) entries, updated on acquire/release/insert/decay.
    idle: BTreeSet<IdleKey>,
    /// Pre-index full-scan eviction (kept as the oracle/benchmark
    /// reference path; see [`set_full_scan_eviction`](Self::set_full_scan_eviction)).
    full_scan_eviction: bool,
    /// Reusable per-pass scratch (compound policies + victim batching).
    scan_ids: Vec<AdapterId>,
    scan_cands: Vec<Candidate>,
    scan_heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, AdapterId)>>,
    victims: Vec<AdapterId>,
    /// Decision journal for the telemetry overlay; `None` (the default)
    /// keeps the admit/evict paths free of any journalling work.
    journal: Option<Vec<CacheJournalEvent>>,
}

impl AdapterCache {
    /// Creates a Chameleon-style cache with the given eviction policy.
    pub fn new(policy: EvictionPolicy) -> Self {
        AdapterCache {
            policy,
            retain_on_release: true,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            gdsf_floor: 0.0,
            idle: BTreeSet::new(),
            full_scan_eviction: false,
            scan_ids: Vec::new(),
            scan_cands: Vec::new(),
            scan_heap: std::collections::BinaryHeap::new(),
            victims: Vec::new(),
            journal: None,
        }
    }

    /// Creates the S-LoRA baseline residency table: adapters are discarded
    /// the moment no running request uses them (§2), so nothing is ever
    /// cached idle.
    pub fn discard_mode() -> Self {
        AdapterCache {
            policy: EvictionPolicy::Lru, // irrelevant: no idle entries exist
            retain_on_release: false,
            ..AdapterCache::new(EvictionPolicy::Lru)
        }
    }

    /// Switches eviction to the pre-index full-scan reference
    /// implementation (rebuilds the candidate list from the entry table on
    /// every victim). Kept for the indexed-vs-scan oracle property test
    /// and the `chameleon-bench` eviction-storm baseline; production
    /// callers never enable it.
    pub fn set_full_scan_eviction(&mut self, on: bool) {
        self.full_scan_eviction = on;
    }

    /// Turns on the admit/evict decision journal (see
    /// [`CacheJournalEvent`]). Idempotent; journalling stays off — and
    /// costs nothing — until this is called.
    pub fn enable_journal(&mut self) {
        self.journal.get_or_insert_with(Vec::new);
    }

    /// Drains journalled decisions accumulated since the last drain, in
    /// emission order. Returns an empty vec when journalling is off.
    pub fn drain_journal(&mut self) -> Vec<CacheJournalEvent> {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Whether idle adapters are retained (Chameleon) or discarded (S-LoRA).
    pub fn retains_idle(&self) -> bool {
        self.retain_on_release
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// True when the adapter's weights are on the GPU (idle or in use).
    pub fn is_resident(&self, id: AdapterId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Reference count of a resident adapter (0 = idle in cache).
    pub fn ref_count(&self, id: AdapterId) -> Option<u32> {
        self.entries.get(&id).map(|e| e.ref_count)
    }

    /// Number of resident adapters (idle + in use).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of idle (evictable) cached adapters.
    pub fn idle_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.ref_count == 0)
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes of in-use (pinned) adapters.
    pub fn in_use_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.ref_count > 0)
            .map(|e| e.bytes)
            .sum()
    }

    /// Looks up `id` for a new request at `now`.
    ///
    /// On a hit the adapter's metadata is refreshed, its reference count
    /// incremented (moving it from the cache region to in-use if it was
    /// idle), and `true` returned. On a miss nothing changes and `false` is
    /// returned — the caller is expected to load the weights and then call
    /// [`insert_loaded`](Self::insert_loaded).
    pub fn acquire(&mut self, pool: &mut MemoryPool, id: AdapterId, now: SimTime) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                if e.ref_count == 0 {
                    // Leaving the idle set: unindex under the *old* key.
                    self.idle.remove(&idle_key(self.policy, id, e));
                    pool.transfer(Region::AdapterCache, Region::AdaptersInUse, e.bytes);
                }
                e.ref_count += 1;
                e.last_used = now;
                e.frequency += 1;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Registers a freshly loaded adapter with `initial_refs` waiting
    /// requests, billing [`Region::AdaptersInUse`] (or the cache region when
    /// `initial_refs == 0`, i.e. a prefetch).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the bytes don't fit — callers should
    /// [`make_room`](Self::make_room) first.
    ///
    /// # Panics
    ///
    /// Panics if the adapter is already resident.
    pub fn insert_loaded(
        &mut self,
        pool: &mut MemoryPool,
        spec: &AdapterSpec,
        now: SimTime,
        initial_refs: u32,
    ) -> Result<(), OutOfMemory> {
        assert!(
            !self.entries.contains_key(&spec.id()),
            "{} already resident",
            spec.id()
        );
        let region = if initial_refs > 0 {
            Region::AdaptersInUse
        } else {
            Region::AdapterCache
        };
        pool.reserve(region, spec.bytes())?;
        let entry = Entry {
            bytes: spec.bytes(),
            last_used: now,
            frequency: initial_refs.max(1),
            ref_count: initial_refs,
        };
        if initial_refs == 0 {
            self.idle.insert(idle_key(self.policy, spec.id(), &entry));
        }
        self.entries.insert(spec.id(), entry);
        self.stats.bytes_loaded += spec.bytes();
        if let Some(j) = self.journal.as_mut() {
            j.push(CacheJournalEvent::Admit {
                adapter: spec.id(),
                bytes: spec.bytes(),
                refs: initial_refs,
            });
        }
        Ok(())
    }

    /// Adds a reference to an already-resident adapter (a second concurrent
    /// request for the same adapter while it is in use).
    ///
    /// # Panics
    ///
    /// Panics if the adapter is not resident.
    pub fn add_ref(&mut self, pool: &mut MemoryPool, id: AdapterId, now: SimTime) {
        let e = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("{id} not resident"));
        if e.ref_count == 0 {
            self.idle.remove(&idle_key(self.policy, id, e));
            pool.transfer(Region::AdapterCache, Region::AdaptersInUse, e.bytes);
        }
        e.ref_count += 1;
        e.last_used = now;
    }

    /// Drops one reference when a request finishes. At zero references the
    /// adapter either moves into the idle cache (Chameleon) or is freed
    /// immediately (S-LoRA discard mode).
    ///
    /// # Panics
    ///
    /// Panics if the adapter is not resident or has no references.
    pub fn release(&mut self, pool: &mut MemoryPool, id: AdapterId, now: SimTime) {
        let e = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("{id} not resident"));
        assert!(e.ref_count > 0, "{id} released with zero refs");
        e.ref_count -= 1;
        e.last_used = now;
        if e.ref_count == 0 {
            let bytes = e.bytes;
            if self.retain_on_release {
                self.idle.insert(idle_key(self.policy, id, e));
                pool.transfer(Region::AdaptersInUse, Region::AdapterCache, bytes);
            } else {
                pool.release(Region::AdaptersInUse, bytes);
                self.entries.remove(&id);
            }
        }
    }

    /// Ensures at least `needed` bytes are free in `pool`, evicting idle
    /// adapters by policy. Adapters in `protected` (those of queued
    /// requests, §4.2) are spared in the first pass and evicted only if the
    /// first pass was insufficient. Referenced adapters are never evicted.
    ///
    /// Returns `true` when the pool ended with `needed` bytes free.
    pub fn make_room(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        now: SimTime,
        protected: &HashSet<AdapterId>,
    ) -> bool {
        if pool.free() >= needed {
            return true;
        }
        self.evict_pass(pool, needed, now, Some(protected));
        if pool.free() >= needed {
            return true;
        }
        // §4.2: "The adapters of queued requests are considered for
        // eviction only when memory constraints make it necessary."
        self.evict_pass(pool, needed, now, None);
        pool.free() >= needed
    }

    fn evict_pass(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        now: SimTime,
        protected: Option<&HashSet<AdapterId>>,
    ) {
        if self.full_scan_eviction {
            self.evict_pass_full_scan(pool, needed, now, protected);
        } else if key_is_total(self.policy) {
            self.evict_pass_indexed(pool, needed, protected);
        } else {
            self.evict_pass_compound(pool, needed, now, protected);
        }
    }

    /// Keyed policies: the index order *is* the victim order, so one walk
    /// of the BTree prefix selects every victim of the pass —
    /// O(evicted · log n) plus any protected entries skipped over.
    fn evict_pass_indexed(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        protected: Option<&HashSet<AdapterId>>,
    ) {
        let mut victims = std::mem::take(&mut self.victims);
        victims.clear();
        let mut projected_free = pool.free();
        for &(.., id) in &self.idle {
            if projected_free >= needed {
                break;
            }
            if protected.is_none_or(|p| !p.contains(&id)) {
                projected_free += self.entries[&id].bytes;
                victims.push(id);
            }
        }
        for id in victims.drain(..) {
            self.evict_one(pool, id);
        }
        self.victims = victims;
    }

    /// Compound (normalised) policies: scores depend on the candidate-set
    /// maxima and on `now`, so no stable across-call key exists. The pass
    /// builds the candidate set once — in deterministic id order, from the
    /// idle index, into reusable scratch — scores it into a min-heap, and
    /// rescores lazily: a victim only invalidates the remaining scores
    /// when it held one of the normalisation extrema (max frequency, max
    /// bytes, or oldest use). The victim sequence is exactly the one
    /// [`EvictionPolicy::pick_victim`] produces (oracle property test
    /// `prop_indexed_eviction_matches_full_scan`), but a typical victim
    /// costs O(log n) instead of a full rescan, and nothing allocates
    /// after warm-up.
    fn evict_pass_compound(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        now: SimTime,
        protected: Option<&HashSet<AdapterId>>,
    ) {
        use std::cmp::Reverse;
        if pool.free() >= needed {
            return;
        }
        let (wf, wr, ws) = self
            .policy
            .compound_weights()
            .expect("compound eviction pass requires a compound policy");
        let mut ids = std::mem::take(&mut self.scan_ids);
        let mut cands = std::mem::take(&mut self.scan_cands);
        let mut heap = std::mem::take(&mut self.scan_heap);
        ids.clear();
        cands.clear();
        heap.clear();
        for &(.., id) in &self.idle {
            if protected.is_none_or(|p| !p.contains(&id)) {
                let e = &self.entries[&id];
                cands.push(Candidate {
                    index: ids.len(),
                    bytes: e.bytes,
                    frequency: e.frequency,
                    last_used: e.last_used,
                });
                ids.push(id);
            }
        }
        // Normalisation state of the current heap contents:
        // (max_freq, max_bytes, min_last); `None` forces a rescore.
        let mut norm: Option<(f64, f64, SimTime)> = None;
        while pool.free() < needed && !cands.is_empty() {
            let (max_freq, max_bytes, min_last) = match norm {
                Some(n) => n,
                None => {
                    let max_freq = cands.iter().map(|c| c.frequency).max().unwrap_or(0) as f64;
                    let max_bytes = cands.iter().map(|c| c.bytes).max().unwrap_or(0) as f64;
                    let max_age = cands
                        .iter()
                        .map(|c| now.saturating_since(c.last_used).as_secs_f64())
                        .fold(0.0f64, f64::max);
                    let min_last = cands.iter().map(|c| c.last_used).min().unwrap_or(now);
                    heap.clear();
                    for (c, &id) in cands.iter().zip(ids.iter()) {
                        let bits =
                            compound_score_bits(c, now, max_freq, max_bytes, max_age, wf, wr, ws);
                        heap.push(Reverse((bits, id)));
                    }
                    let n = (max_freq, max_bytes, min_last);
                    norm = Some(n);
                    n
                }
            };
            let Reverse((_, victim_id)) = heap.pop().expect("heap mirrors the candidate set");
            let pos = ids
                .binary_search(&victim_id)
                .expect("victim is a candidate");
            let victim = cands[pos];
            ids.remove(pos);
            cands.remove(pos);
            self.evict_one(pool, victim_id);
            // Remaining scores stay exact unless the victim defined one of
            // the normalisation extrema.
            if victim.frequency as f64 == max_freq
                || victim.bytes as f64 == max_bytes
                || victim.last_used == min_last
            {
                norm = None;
            }
        }
        self.scan_ids = ids;
        self.scan_cands = cands;
        self.scan_heap = heap;
    }

    /// The pre-index reference: rebuild the candidate list from the entry
    /// table for every victim (O(n) per victim). Candidates are collected
    /// in id order so ties break deterministically — the original
    /// `HashMap`-iteration order made tie-breaks vary across processes —
    /// and [`pick_victim`](EvictionPolicy::pick_victim) receives one
    /// candidate slice directly (the old second copy is gone).
    fn evict_pass_full_scan(
        &mut self,
        pool: &mut MemoryPool,
        needed: u64,
        now: SimTime,
        protected: Option<&HashSet<AdapterId>>,
    ) {
        while pool.free() < needed {
            let mut ids: Vec<AdapterId> = self
                .entries
                .iter()
                .filter(|(id, e)| e.ref_count == 0 && protected.is_none_or(|p| !p.contains(id)))
                .map(|(&id, _)| id)
                .collect();
            ids.sort_unstable();
            let cands: Vec<Candidate> = ids
                .iter()
                .enumerate()
                .map(|(i, id)| {
                    let e = &self.entries[id];
                    Candidate {
                        index: i,
                        bytes: e.bytes,
                        frequency: e.frequency,
                        last_used: e.last_used,
                    }
                })
                .collect();
            let Some(victim_idx) = self.policy.pick_victim(&cands, now, self.gdsf_floor) else {
                return; // nothing evictable left
            };
            self.evict_one(pool, ids[victim_idx]);
        }
    }

    /// Evicts one idle adapter: entry, index, pool accounting, statistics,
    /// and the GDSF aging floor.
    fn evict_one(&mut self, pool: &mut MemoryPool, id: AdapterId) {
        let e = self.entries.remove(&id).expect("victim is resident");
        debug_assert_eq!(e.ref_count, 0, "victim must be idle");
        self.idle.remove(&idle_key(self.policy, id, &e));
        if matches!(self.policy, EvictionPolicy::Gdsf) {
            // GreedyDual aging: the floor rises to the evicted score.
            self.gdsf_floor = EvictionPolicy::gdsf_score(
                &Candidate {
                    index: 0,
                    bytes: e.bytes,
                    frequency: e.frequency,
                    last_used: e.last_used,
                },
                self.gdsf_floor,
            );
        }
        pool.release(Region::AdapterCache, e.bytes);
        self.stats.evictions += 1;
        self.stats.bytes_evicted += e.bytes;
        if let Some(j) = self.journal.as_mut() {
            j.push(CacheJournalEvent::Evict {
                adapter: id,
                bytes: e.bytes,
                frequency: e.frequency,
                last_used: e.last_used,
            });
        }
    }

    /// Halves all frequency counters — called every `T_refresh` so that
    /// popularity tracks the current workload rather than all of history.
    pub fn decay_frequencies(&mut self) {
        for e in self.entries.values_mut() {
            e.frequency /= 2;
        }
        // Frequency participates in the LFU/GDSF index keys: rebuild.
        if matches!(self.policy, EvictionPolicy::Lfu | EvictionPolicy::Gdsf) {
            self.idle.clear();
            let policy = self.policy;
            self.idle.extend(
                self.entries
                    .iter()
                    .filter(|(_, e)| e.ref_count == 0)
                    .map(|(&id, e)| idle_key(policy, id, e)),
            );
        }
    }

    /// Ids of all idle (evictable) adapters, in index order (no
    /// allocation — callers that need a `Vec` collect explicitly).
    pub fn idle_adapters(&self) -> impl Iterator<Item = AdapterId> + '_ {
        self.idle.iter().map(|&(.., id)| id)
    }

    /// Iterates over every resident adapter (idle or in use) — the
    /// residency view cluster routers place requests on.
    pub fn resident_adapters(&self) -> impl Iterator<Item = AdapterId> + '_ {
        self.entries.keys().copied()
    }

    /// Asserts the idle index mirrors the entry table exactly (test/debug
    /// hook for the index-maintenance invariant).
    #[doc(hidden)]
    pub fn assert_index_consistent(&self) {
        let idle_entries = self.entries.values().filter(|e| e.ref_count == 0).count();
        assert_eq!(self.idle.len(), idle_entries, "idle index out of sync");
        for &(.., id) in &self.idle {
            let e = self.entries.get(&id).expect("indexed entry exists");
            assert_eq!(e.ref_count, 0, "{id} indexed while referenced");
            assert!(
                self.idle.contains(&idle_key(self.policy, id, e)),
                "{id} indexed under a stale key"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterRank, LlmSpec};
    use proptest::prelude::*;

    fn spec(id: u32, rank: u32) -> AdapterSpec {
        AdapterSpec::new(AdapterId(id), AdapterRank::new(rank), &LlmSpec::llama_7b())
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn pool_gb(gb: u64) -> MemoryPool {
        MemoryPool::new(gb << 30)
    }

    #[test]
    fn miss_then_load_then_hit() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 32); // 64 MB
        assert!(!c.acquire(&mut pool, a.id(), t(0.0)));
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        assert_eq!(pool.used(Region::AdaptersInUse), 64 << 20);
        c.release(&mut pool, a.id(), t(1.0));
        assert_eq!(pool.used(Region::AdapterCache), 64 << 20);
        assert_eq!(pool.used(Region::AdaptersInUse), 0);
        // Second request hits.
        assert!(c.acquire(&mut pool, a.id(), t(2.0)));
        assert_eq!(pool.used(Region::AdaptersInUse), 64 << 20);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discard_mode_frees_immediately() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::discard_mode();
        let a = spec(1, 32);
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        c.release(&mut pool, a.id(), t(1.0));
        assert_eq!(pool.total_used(), 0);
        assert!(!c.is_resident(a.id()));
        // Next request misses again — the S-LoRA reload tax.
        assert!(!c.acquire(&mut pool, a.id(), t(2.0)));
        assert!(!c.retains_idle());
    }

    #[test]
    fn shared_adapter_refcounting() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 16);
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        c.add_ref(&mut pool, a.id(), t(0.5));
        assert_eq!(c.ref_count(a.id()), Some(2));
        c.release(&mut pool, a.id(), t(1.0));
        assert_eq!(c.ref_count(a.id()), Some(1));
        assert_eq!(pool.used(Region::AdaptersInUse), 32 << 20);
        c.release(&mut pool, a.id(), t(2.0));
        assert_eq!(c.ref_count(a.id()), Some(0));
        assert_eq!(c.idle_bytes(), 32 << 20);
        assert_eq!(c.in_use_bytes(), 0);
    }

    #[test]
    fn make_room_evicts_idle_only() {
        // Pool sized to hold exactly three rank-32 adapters (64 MB each).
        let mut pool = MemoryPool::new(3 * (64 << 20));
        let mut c = AdapterCache::new(EvictionPolicy::Lru);
        let (a, b, d) = (spec(1, 32), spec(2, 32), spec(3, 32));
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap(); // pinned
        c.insert_loaded(&mut pool, &b, t(1.0), 0).unwrap(); // idle, older
        c.insert_loaded(&mut pool, &d, t(2.0), 0).unwrap(); // idle, newer
        assert_eq!(pool.free(), 0);
        // Need one slot: LRU evicts b (oldest idle), never a (pinned).
        assert!(c.make_room(&mut pool, 64 << 20, t(3.0), &HashSet::new()));
        assert!(!c.is_resident(b.id()));
        assert!(c.is_resident(a.id()));
        assert!(c.is_resident(d.id()));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().bytes_evicted, 64 << 20);
    }

    #[test]
    fn make_room_respects_protection_then_overrides() {
        let mut pool = MemoryPool::new(2 * (64 << 20));
        let mut c = AdapterCache::new(EvictionPolicy::Lru);
        let (a, b) = (spec(1, 32), spec(2, 32));
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        c.insert_loaded(&mut pool, &b, t(1.0), 0).unwrap();
        let protect_a: HashSet<AdapterId> = [a.id()].into();
        // One slot needed: b (unprotected) goes first even though a is older.
        assert!(c.make_room(&mut pool, 64 << 20, t(2.0), &protect_a));
        assert!(c.is_resident(a.id()));
        assert!(!c.is_resident(b.id()));
        // Two slots needed: protection must yield (§4.2 second pass).
        assert!(c.make_room(&mut pool, 2 * (64 << 20), t(3.0), &protect_a));
        assert!(!c.is_resident(a.id()));
    }

    #[test]
    fn make_room_fails_when_everything_pinned() {
        let mut pool = MemoryPool::new(64 << 20);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 32);
        c.insert_loaded(&mut pool, &a, t(0.0), 1).unwrap();
        assert!(!c.make_room(&mut pool, 64 << 20, t(1.0), &HashSet::new()));
        assert!(c.is_resident(a.id()), "pinned adapter survived");
    }

    #[test]
    fn insert_requires_room() {
        let mut pool = MemoryPool::new(32 << 20);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 32); // 64 MB > 32 MB pool
        assert!(c.insert_loaded(&mut pool, &a, t(0.0), 1).is_err());
        assert!(!c.is_resident(a.id()));
    }

    #[test]
    fn frequency_decay() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::Lfu);
        let a = spec(1, 8);
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        for i in 0..7 {
            c.add_ref(&mut pool, a.id(), t(i as f64));
            c.release(&mut pool, a.id(), t(i as f64 + 0.5));
        }
        c.decay_frequencies();
        // Frequency halved but entry retained.
        assert!(c.is_resident(a.id()));
        assert_eq!(c.idle_adapters().collect::<Vec<_>>(), vec![a.id()]);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 8);
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        let _ = c.insert_loaded(&mut pool, &a, t(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "zero refs")]
    fn over_release_panics() {
        let mut pool = pool_gb(1);
        let mut c = AdapterCache::new(EvictionPolicy::chameleon());
        let a = spec(1, 8);
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        c.release(&mut pool, a.id(), t(1.0));
    }

    #[test]
    fn journal_records_admits_and_evicts_with_score_inputs() {
        let mut pool = MemoryPool::new(2 * (64 << 20));
        let mut c = AdapterCache::new(EvictionPolicy::Lru);
        // Off by default: a disabled cache journals nothing and drains empty.
        let (a, b) = (spec(1, 32), spec(2, 32));
        c.insert_loaded(&mut pool, &a, t(0.0), 0).unwrap();
        assert!(c.drain_journal().is_empty());
        c.enable_journal();
        c.insert_loaded(&mut pool, &b, t(1.0), 1).unwrap();
        c.add_ref(&mut pool, a.id(), t(2.0));
        c.release(&mut pool, a.id(), t(3.0));
        // Need a slot: LRU evicts a (idle); b is pinned.
        assert!(c.make_room(&mut pool, 64 << 20, t(4.0), &HashSet::new()));
        let journal = c.drain_journal();
        assert_eq!(
            journal,
            vec![
                CacheJournalEvent::Admit {
                    adapter: b.id(),
                    bytes: 64 << 20,
                    refs: 1,
                },
                CacheJournalEvent::Evict {
                    adapter: a.id(),
                    bytes: 64 << 20,
                    frequency: 1,
                    last_used: t(3.0),
                },
            ]
        );
        // Drain resets; a second drain sees only new decisions.
        assert!(c.drain_journal().is_empty());
    }

    proptest! {
        /// Under arbitrary acquire/insert/release/make_room interleavings:
        /// pinned adapters are never evicted, pool accounting matches the
        /// cache's view, and capacity is never exceeded.
        #[test]
        fn prop_cache_invariants(ops in proptest::collection::vec((0u32..6, 0u8..4), 1..300)) {
            let mut pool = MemoryPool::new(5 * (16 << 20)); // five rank-8 slots
            let mut c = AdapterCache::new(EvictionPolicy::chameleon());
            let mut live_refs: HashMap<AdapterId, u32> = HashMap::new();
            let mut clock = 0.0;
            for (aid, op) in ops {
                clock += 0.1;
                let a = spec(aid, 8);
                match op {
                    0 => {
                        // acquire-or-load path
                        if !c.acquire(&mut pool, a.id(), t(clock)) {
                            if c.make_room(&mut pool, a.bytes(), t(clock), &HashSet::new())
                                && c.insert_loaded(&mut pool, &a, t(clock), 1).is_ok() {
                                *live_refs.entry(a.id()).or_insert(0) += 1;
                            }
                        } else {
                            *live_refs.entry(a.id()).or_insert(0) += 1;
                        }
                    }
                    1 => {
                        // release if we hold a ref
                        if live_refs.get(&a.id()).copied().unwrap_or(0) > 0 {
                            c.release(&mut pool, a.id(), t(clock));
                            *live_refs.get_mut(&a.id()).unwrap() -= 1;
                        }
                    }
                    2 => {
                        let _ = c.make_room(&mut pool, 16 << 20, t(clock), &HashSet::new());
                    }
                    _ => c.decay_frequencies(),
                }
                // Invariants.
                prop_assert!(pool.total_used() <= pool.capacity());
                prop_assert_eq!(c.idle_bytes(), pool.used(Region::AdapterCache));
                prop_assert_eq!(c.in_use_bytes(), pool.used(Region::AdaptersInUse));
                for (&id, &refs) in &live_refs {
                    if refs > 0 {
                        prop_assert!(c.is_resident(id), "pinned adapter evicted");
                        prop_assert_eq!(c.ref_count(id), Some(refs));
                    }
                }
                c.assert_index_consistent();
            }
        }

        /// Oracle for the indexed eviction: under random workloads, every
        /// policy's indexed path picks the exact victim sequence of the
        /// pre-index full-scan path. Divergence in any single pick makes
        /// the resident sets (and eviction statistics) drift apart.
        #[test]
        fn prop_indexed_eviction_matches_full_scan(
            policy_sel in 0usize..6,
            ops in proptest::collection::vec((0u32..12, 0u8..5, 1u32..5), 1..250),
        ) {
            let policy = [
                EvictionPolicy::Lru,
                EvictionPolicy::Lfu,
                EvictionPolicy::SizeOnly,
                EvictionPolicy::FairShare,
                EvictionPolicy::chameleon(),
                EvictionPolicy::Gdsf,
            ][policy_sel];
            let mut pool_a = MemoryPool::new(7 * (16 << 20));
            let mut pool_b = MemoryPool::new(7 * (16 << 20));
            let mut indexed = AdapterCache::new(policy);
            let mut scanned = AdapterCache::new(policy);
            scanned.set_full_scan_eviction(true);
            let mut clock = 0.0;
            for (aid, op, rank_sel) in ops {
                clock += 0.1;
                // Ranks vary so size-aware policies see distinct bytes.
                let a = spec(aid, 4 << rank_sel);
                for (c, pool) in [(&mut indexed, &mut pool_a), (&mut scanned, &mut pool_b)] {
                    match op {
                        0 | 1 => {
                            if !c.acquire(pool, a.id(), t(clock)) {
                                if c.make_room(pool, a.bytes(), t(clock), &HashSet::new()) {
                                    let _ = c.insert_loaded(pool, &a, t(clock), 0);
                                }
                            } else {
                                c.release(pool, a.id(), t(clock));
                            }
                        }
                        2 => {
                            // Protected first pass, override second.
                            let protect: HashSet<AdapterId> = [a.id()].into();
                            let _ = c.make_room(pool, 32 << 20, t(clock), &protect);
                        }
                        3 => {
                            let _ = c.make_room(pool, 16 << 20, t(clock), &HashSet::new());
                        }
                        _ => c.decay_frequencies(),
                    }
                }
                // Same victims ⇒ same resident sets and statistics.
                let mut ra: Vec<AdapterId> = indexed.resident_adapters().collect();
                let mut rb: Vec<AdapterId> = scanned.resident_adapters().collect();
                ra.sort_unstable();
                rb.sort_unstable();
                prop_assert_eq!(ra, rb, "resident sets diverged ({})", policy.name());
                prop_assert_eq!(indexed.stats(), scanned.stats());
                let ia: Vec<AdapterId> = indexed.idle_adapters().collect();
                let mut ib: Vec<AdapterId> = scanned.idle_adapters().collect();
                ib.sort_unstable();
                let mut ia_sorted = ia.clone();
                ia_sorted.sort_unstable();
                prop_assert_eq!(ia_sorted, ib, "idle sets diverged");
                indexed.assert_index_consistent();
            }
        }
    }
}
