//! The Chameleon Adapter Cache (§4.2).
//!
//! A software-managed cache of LoRA adapter weights in otherwise-idle GPU
//! memory. Three properties from the paper define it:
//!
//! 1. **Dynamic sizing** — the cache has no fixed capacity; it grows into
//!    idle memory and shrinks (evicts) the moment running requests need the
//!    space. [`AdapterCache::make_room`] implements the shrink path.
//! 2. **Cost-aware eviction** — misses have different costs because
//!    adapters have different sizes, and popularity is skewed. The
//!    [`EvictionPolicy`] enum implements the paper's compound score
//!    (`F·Frequency + R·Recency + S·Size` with F=0.45, R=0.10, S=0.45),
//!    the equal-weight `FairShare` variant, plain LRU/LFU, and the GDSF
//!    comparator from the §5.3 discussion.
//! 3. **Reference-count pinning** — adapters used by running requests are
//!    never evicted; adapters of *queued* requests are protected unless
//!    memory constraints make eviction unavoidable (two-pass eviction).

pub mod policy;
pub mod store;

pub use policy::EvictionPolicy;
pub use store::{AdapterCache, CacheJournalEvent, CacheStats};
