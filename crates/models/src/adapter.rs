//! LoRA adapter specifications.
//!
//! A LoRA adapter of rank `r` adds a pair of low-rank matrices
//! (`A: r×h`, `B: h×r`) to each adapted projection of each layer. Following
//! S-LoRA we adapt the four attention projections (Q, K, V, O), which
//! reproduces the paper's §3.2 sizing: a rank-32 adapter for Llama-7B is
//! 64 MB (2 MB per unit of rank).

use crate::llm::{LlmSpec, DTYPE_BYTES};
use serde::{Deserialize, Serialize};

/// Number of projection matrices adapted per layer (Q, K, V, O).
pub const ADAPTED_PROJECTIONS: u64 = 4;

/// Unique identifier of an adapter within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AdapterId(pub u32);

impl std::fmt::Display for AdapterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "adapter#{}", self.0)
    }
}

/// A LoRA rank — the paper sweeps {8, 16, 32, 64, 128}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AdapterRank(u32);

impl AdapterRank {
    /// The five ranks used throughout the paper's evaluation (§5.1).
    pub const PAPER_SET: [AdapterRank; 5] = [
        AdapterRank(8),
        AdapterRank(16),
        AdapterRank(32),
        AdapterRank(64),
        AdapterRank(128),
    ];

    /// Creates a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn new(rank: u32) -> Self {
        assert!(rank > 0, "rank must be positive");
        AdapterRank(rank)
    }

    /// The raw rank value.
    pub fn get(self) -> u32 {
        self.0
    }
}

impl From<AdapterRank> for u32 {
    fn from(r: AdapterRank) -> u32 {
        r.0
    }
}

impl std::fmt::Display for AdapterRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A concrete adapter: identity, rank, and derived sizes for a base model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdapterSpec {
    id: AdapterId,
    rank: AdapterRank,
    bytes: u64,
}

impl AdapterSpec {
    /// Creates an adapter of `rank` for `base`, deriving its weight size.
    pub fn new(id: AdapterId, rank: AdapterRank, base: &LlmSpec) -> Self {
        AdapterSpec {
            id,
            rank,
            bytes: adapter_bytes(base, rank),
        }
    }

    /// The adapter's identity.
    pub fn id(&self) -> AdapterId {
        self.id
    }

    /// The adapter's rank.
    pub fn rank(&self) -> AdapterRank {
        self.rank
    }

    /// Bytes of GPU memory the adapter weights occupy.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Parameter count of the adapter.
    pub fn params(&self) -> u64 {
        self.bytes / DTYPE_BYTES
    }
}

/// Weight bytes of a rank-`r` adapter over `base`:
/// `layers · ADAPTED_PROJECTIONS · 2 matrices · hidden · r · dtype`.
///
/// For Llama-7B this is exactly `2 MiB · r`, matching §3.2's "a rank 32
/// adapter for Llama-7B is 64 MB".
///
/// ```
/// use chameleon_models::adapter::{adapter_bytes, AdapterRank};
/// use chameleon_models::LlmSpec;
/// let b = adapter_bytes(&LlmSpec::llama_7b(), AdapterRank::new(32));
/// assert_eq!(b, 64 * 1024 * 1024);
/// ```
pub fn adapter_bytes(base: &LlmSpec, rank: AdapterRank) -> u64 {
    u64::from(base.layers())
        * ADAPTED_PROJECTIONS
        * 2
        * u64::from(base.hidden())
        * u64::from(rank.get())
        * DTYPE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn llama7b_rank32_is_64mb() {
        let b = adapter_bytes(&LlmSpec::llama_7b(), AdapterRank::new(32));
        assert_eq!(b, 64 << 20);
    }

    #[test]
    fn llama7b_bytes_are_2mb_per_rank() {
        for r in AdapterRank::PAPER_SET {
            let b = adapter_bytes(&LlmSpec::llama_7b(), r);
            assert_eq!(b, u64::from(r.get()) * (2 << 20));
        }
    }

    #[test]
    fn llama70b_rank32_is_hundreds_of_mb() {
        // §3.2: "its size grows to 256 MB for Llama-70B". Our 4-projection
        // formula gives 320 MB for the 80-layer/8192-hidden geometry — the
        // same order of magnitude; see DESIGN.md for the note.
        let b = adapter_bytes(&LlmSpec::llama_70b(), AdapterRank::new(32));
        let mb = b >> 20;
        assert!((200..400).contains(&mb), "70B rank-32 adapter {mb} MB");
    }

    #[test]
    fn spec_derives_bytes() {
        let base = LlmSpec::llama_7b();
        let a = AdapterSpec::new(AdapterId(3), AdapterRank::new(8), &base);
        assert_eq!(a.id(), AdapterId(3));
        assert_eq!(a.rank().get(), 8);
        assert_eq!(a.bytes(), 16 << 20);
        assert_eq!(a.params(), (16 << 20) / 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AdapterId(5).to_string(), "adapter#5");
        assert_eq!(AdapterRank::new(64).to_string(), "r64");
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_rejected() {
        let _ = AdapterRank::new(0);
    }

    proptest! {
        /// Adapter size is strictly monotone in rank and linear.
        #[test]
        fn prop_bytes_linear_in_rank(r in 1u32..512) {
            let base = LlmSpec::llama_7b();
            let b1 = adapter_bytes(&base, AdapterRank::new(r));
            let b2 = adapter_bytes(&base, AdapterRank::new(2 * r));
            prop_assert_eq!(b2, 2 * b1);
        }
    }
}
