//! Base-LLM architecture specifications.
//!
//! All sizes are derived from the public architecture cards of the models
//! the paper evaluates (§5.1): the Llama family, plus Falcon, OPT and
//! Mixtral which the authors report showing "similar trends".

use serde::{Deserialize, Serialize};

/// Bytes per parameter/activation element. The paper serves fp16 models.
pub const DTYPE_BYTES: u64 = 2;

/// Architecture description of a dense decoder-only LLM.
///
/// ```
/// use chameleon_models::LlmSpec;
/// let m = LlmSpec::llama_7b();
/// assert_eq!(m.layers(), 32);
/// assert_eq!(m.hidden(), 4096);
/// // fp16 weights ≈ 13.5 GB
/// assert!((m.weight_bytes() as f64 / 1e9) > 13.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlmSpec {
    name: String,
    /// Total parameter count.
    params: u64,
    /// Number of transformer layers.
    layers: u32,
    /// Model (embedding) dimension.
    hidden: u32,
    /// Number of attention heads.
    heads: u32,
    /// Number of key/value heads (< `heads` under grouped-query attention).
    kv_heads: u32,
}

impl LlmSpec {
    /// Creates a custom architecture.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `kv_heads > heads`.
    pub fn new(
        name: impl Into<String>,
        params: u64,
        layers: u32,
        hidden: u32,
        heads: u32,
        kv_heads: u32,
    ) -> Self {
        assert!(params > 0 && layers > 0 && hidden > 0 && heads > 0 && kv_heads > 0);
        assert!(kv_heads <= heads, "kv_heads must not exceed heads");
        assert!(
            hidden.is_multiple_of(heads),
            "hidden must divide evenly into heads"
        );
        LlmSpec {
            name: name.into(),
            params,
            layers,
            hidden,
            heads,
            kv_heads,
        }
    }

    /// Llama-7B: the paper's primary model (A40 experiments, Figures 2–22).
    pub fn llama_7b() -> Self {
        LlmSpec::new("Llama-7B", 6_738_000_000, 32, 4096, 32, 32)
    }

    /// Llama-13B (scalability study, Figure 23).
    pub fn llama_13b() -> Self {
        LlmSpec::new("Llama-13B", 13_016_000_000, 40, 5120, 40, 40)
    }

    /// Llama-30B (scalability study, Figure 23).
    pub fn llama_30b() -> Self {
        LlmSpec::new("Llama-30B", 32_529_000_000, 60, 6656, 52, 52)
    }

    /// Llama-70B with grouped-query attention (TP study, Figure 5).
    pub fn llama_70b() -> Self {
        LlmSpec::new("Llama-70B", 68_977_000_000, 80, 8192, 64, 8)
    }

    /// Falcon-40B (§5.1: "similar trends").
    pub fn falcon_40b() -> Self {
        LlmSpec::new("Falcon-40B", 41_303_000_000, 60, 8192, 128, 8)
    }

    /// OPT-13B (§5.1: "similar trends").
    pub fn opt_13b() -> Self {
        LlmSpec::new("OPT-13B", 12_853_000_000, 40, 5120, 40, 40)
    }

    /// Mixtral-8x7B; modelled by its ~13B active parameters per token, which
    /// is what drives inference latency.
    pub fn mixtral_8x7b() -> Self {
        LlmSpec::new("Mixtral-8x7B", 12_879_000_000, 32, 4096, 32, 8)
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total parameter count.
    pub fn params(&self) -> u64 {
        self.params
    }

    /// Transformer layer count.
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// Model (embedding) dimension.
    pub fn hidden(&self) -> u32 {
        self.hidden
    }

    /// Attention head count.
    pub fn heads(&self) -> u32 {
        self.heads
    }

    /// Key/value head count (grouped-query attention).
    pub fn kv_heads(&self) -> u32 {
        self.kv_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.heads
    }

    /// Bytes of GPU memory the fp16 weights occupy.
    pub fn weight_bytes(&self) -> u64 {
        self.params * DTYPE_BYTES
    }

    /// Bytes of KV cache consumed per token: K and V vectors for every
    /// layer, at the (possibly grouped) KV width.
    ///
    /// Llama-7B: `2 · 32 · 4096 · 2 B = 512 KiB/token`.
    pub fn kv_bytes_per_token(&self) -> u64 {
        let kv_width = u64::from(self.kv_heads) * u64::from(self.head_dim());
        2 * u64::from(self.layers) * kv_width * DTYPE_BYTES
    }

    /// FLOPs of one forward pass over `tokens` tokens (the standard
    /// `2 · params · tokens` dense-decoder estimate).
    pub fn forward_flops(&self, tokens: u64) -> f64 {
        2.0 * self.params as f64 * tokens as f64
    }
}

impl std::fmt::Display for LlmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama7b_geometry() {
        let m = LlmSpec::llama_7b();
        assert_eq!(m.name(), "Llama-7B");
        assert_eq!(m.head_dim(), 128);
        // 2 * 32 * 4096 * 2 = 512 KiB per token.
        assert_eq!(m.kv_bytes_per_token(), 524_288);
        // ~13.5 GB of weights in fp16.
        let gb = m.weight_bytes() as f64 / 1e9;
        assert!((13.0..14.0).contains(&gb), "weights {gb} GB");
    }

    #[test]
    fn llama70b_uses_gqa() {
        let m = LlmSpec::llama_70b();
        assert_eq!(m.kv_heads(), 8);
        // GQA shrinks KV bytes/token well below the MHA equivalent.
        let mha_equiv = 2 * 80 * 8192 * 2;
        assert!(m.kv_bytes_per_token() < mha_equiv / 4);
    }

    #[test]
    fn model_sizes_are_ordered() {
        let sizes: Vec<u64> = [
            LlmSpec::llama_7b(),
            LlmSpec::llama_13b(),
            LlmSpec::llama_30b(),
            LlmSpec::llama_70b(),
        ]
        .iter()
        .map(|m| m.weight_bytes())
        .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn forward_flops_scales_linearly() {
        let m = LlmSpec::llama_7b();
        assert_eq!(m.forward_flops(200), 2.0 * m.forward_flops(100));
    }

    #[test]
    #[should_panic(expected = "kv_heads must not exceed heads")]
    fn rejects_bad_gqa() {
        let _ = LlmSpec::new("bad", 1, 1, 128, 4, 8);
    }

    #[test]
    fn display_is_name() {
        assert_eq!(LlmSpec::opt_13b().to_string(), "OPT-13B");
    }
}
