//! Adapter pool generation — the §5.1 workload recipe.
//!
//! "We set the number of different adapters used by the requests to `N_a`
//! [100 by default]. There are five adapter ranks: 8, 16, 32, 64, and 128.
//! Each rank has an equal number of different adapters. To each request, we
//! attach an adapter, following a uniform distribution for rank popularity
//! and a power-law distribution for adapter popularity within a rank."
//!
//! [`AdapterPool`] materialises that recipe, and also supports the
//! alternative distributions of the §5.4 sensitivity study (U-U, U-P, P-P).

use crate::adapter::{AdapterId, AdapterRank, AdapterSpec};
use crate::llm::LlmSpec;
use chameleon_simcore::dist::Zipf;
use chameleon_simcore::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Popularity shape for ranks or for adapters within a rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopularityDist {
    /// All choices equally likely.
    Uniform,
    /// Zipf-distributed with the given exponent (1.0 in the paper's setup).
    PowerLaw {
        /// Zipf exponent; larger is more skewed.
        exponent: f64,
    },
}

impl PopularityDist {
    /// The paper's default within-rank adapter popularity.
    pub fn power_law() -> Self {
        PopularityDist::PowerLaw { exponent: 1.0 }
    }
}

/// Configuration of an adapter pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Total number of distinct adapters `N_a`.
    pub num_adapters: usize,
    /// Ranks present in the pool, split evenly (§5.1 uses the 5-rank set).
    pub ranks: Vec<AdapterRank>,
    /// How popular each *rank group* is.
    pub rank_popularity: PopularityDist,
    /// How popular adapters are *within* a rank group.
    pub within_rank_popularity: PopularityDist,
}

impl PoolConfig {
    /// The paper's default: `N_a = 100`, five ranks with uniform rank
    /// popularity and power-law within-rank popularity.
    pub fn paper_default(num_adapters: usize) -> Self {
        PoolConfig {
            num_adapters,
            ranks: AdapterRank::PAPER_SET.to_vec(),
            rank_popularity: PopularityDist::Uniform,
            within_rank_popularity: PopularityDist::power_law(),
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::paper_default(100)
    }
}

/// A generated pool of adapters plus the sampling machinery that attaches
/// an adapter to each incoming request.
///
/// ```
/// use chameleon_models::{AdapterPool, LlmSpec, PoolConfig};
/// use chameleon_simcore::SimRng;
///
/// let pool = AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(100));
/// assert_eq!(pool.len(), 100);
/// let mut rng = SimRng::seed(1);
/// let a = pool.sample(&mut rng);
/// assert!(pool.get(a.id()).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct AdapterPool {
    adapters: Vec<AdapterSpec>,
    /// Adapter indices grouped by rank-group index.
    groups: Vec<Vec<usize>>,
    rank_sampler: GroupSampler,
    within_samplers: Vec<GroupSampler>,
}

#[derive(Debug, Clone)]
enum GroupSampler {
    Uniform(usize),
    Zipf(Zipf),
}

impl GroupSampler {
    fn build(dist: PopularityDist, n: usize) -> Self {
        match dist {
            PopularityDist::Uniform => GroupSampler::Uniform(n),
            PopularityDist::PowerLaw { exponent } => GroupSampler::Zipf(Zipf::new(n, exponent)),
        }
    }

    fn sample(&self, rng: &mut SimRng) -> usize {
        match self {
            GroupSampler::Uniform(n) => rng.below(*n as u64) as usize,
            GroupSampler::Zipf(z) => z.sample_index(rng),
        }
    }
}

impl AdapterPool {
    /// Generates a pool for `base` according to `cfg`.
    ///
    /// Adapters are split as evenly as possible across the rank groups
    /// (the first `num_adapters % ranks` groups get one extra when the
    /// split is uneven).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_adapters == 0` or `cfg.ranks` is empty.
    pub fn generate(base: &LlmSpec, cfg: &PoolConfig) -> Self {
        assert!(cfg.num_adapters > 0, "empty adapter pool");
        assert!(!cfg.ranks.is_empty(), "no ranks configured");
        let g = cfg.ranks.len();
        let mut adapters = Vec::with_capacity(cfg.num_adapters);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); g];
        for i in 0..cfg.num_adapters {
            let group = i % g;
            let rank = cfg.ranks[group];
            groups[group].push(adapters.len());
            adapters.push(AdapterSpec::new(AdapterId(i as u32), rank, base));
        }
        // Drop empty groups (more ranks than adapters).
        let nonempty: Vec<Vec<usize>> = groups.into_iter().filter(|v| !v.is_empty()).collect();
        let rank_sampler = GroupSampler::build(cfg.rank_popularity, nonempty.len());
        let within_samplers = nonempty
            .iter()
            .map(|grp| GroupSampler::build(cfg.within_rank_popularity, grp.len()))
            .collect();
        AdapterPool {
            adapters,
            groups: nonempty,
            rank_sampler,
            within_samplers,
        }
    }

    /// Number of adapters in the pool.
    pub fn len(&self) -> usize {
        self.adapters.len()
    }

    /// True when the pool has no adapters (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.adapters.is_empty()
    }

    /// Looks up an adapter by id.
    pub fn get(&self, id: AdapterId) -> Option<&AdapterSpec> {
        self.adapters.get(id.0 as usize)
    }

    /// All adapters in the pool.
    pub fn iter(&self) -> impl Iterator<Item = &AdapterSpec> {
        self.adapters.iter()
    }

    /// Draws the adapter for one incoming request: first the rank group by
    /// rank popularity, then the adapter within the group by within-rank
    /// popularity.
    pub fn sample(&self, rng: &mut SimRng) -> &AdapterSpec {
        let group = self.rank_sampler.sample(rng);
        let within = self.within_samplers[group].sample(rng);
        &self.adapters[self.groups[group][within]]
    }

    /// The largest adapter size in the pool, in bytes — used by the WRS
    /// normalisation (§4.3.1's `MaxAdapterSize`).
    pub fn max_adapter_bytes(&self) -> u64 {
        self.adapters.iter().map(|a| a.bytes()).max().unwrap_or(0)
    }

    /// Total bytes if every adapter were resident at once.
    pub fn total_bytes(&self) -> u64 {
        self.adapters.iter().map(|a| a.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> AdapterPool {
        AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(n))
    }

    #[test]
    fn generates_even_rank_split() {
        let p = pool(100);
        assert_eq!(p.len(), 100);
        let mut per_rank = std::collections::HashMap::new();
        for a in p.iter() {
            *per_rank.entry(a.rank().get()).or_insert(0u32) += 1;
        }
        assert_eq!(per_rank.len(), 5);
        assert!(per_rank.values().all(|&c| c == 20));
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let p = pool(37);
        for i in 0..37 {
            let a = p.get(AdapterId(i)).expect("dense ids");
            assert_eq!(a.id(), AdapterId(i));
        }
        assert!(p.get(AdapterId(37)).is_none());
    }

    #[test]
    fn uniform_rank_popularity_is_balanced() {
        let p = pool(100);
        let mut rng = SimRng::seed(2);
        let mut rank_counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let a = p.sample(&mut rng);
            *rank_counts.entry(a.rank().get()).or_insert(0u32) += 1;
        }
        for (&rank, &c) in &rank_counts {
            let frac = c as f64 / 50_000.0;
            assert!(
                (frac - 0.2).abs() < 0.02,
                "rank {rank} drew fraction {frac}"
            );
        }
    }

    #[test]
    fn within_rank_popularity_is_skewed() {
        let p = pool(100);
        let mut rng = SimRng::seed(3);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[p.sample(&mut rng).id().0 as usize] += 1;
        }
        // Within each rank group of 20, the head adapter should dominate the
        // tail adapter by roughly the Zipf(1.0) head/tail ratio (~20×).
        for group_start in 0..5 {
            let head = counts[group_start]; // first adapter of the group
            let tail = counts[group_start + 95]; // last adapter of the group
            assert!(
                head > tail * 4,
                "group {group_start}: head {head} vs tail {tail}"
            );
        }
    }

    #[test]
    fn power_law_rank_popularity_skews_groups() {
        let cfg = PoolConfig {
            rank_popularity: PopularityDist::power_law(),
            ..PoolConfig::paper_default(100)
        };
        let p = AdapterPool::generate(&LlmSpec::llama_7b(), &cfg);
        let mut rng = SimRng::seed(4);
        let mut rank_counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *rank_counts
                .entry(p.sample(&mut rng).rank().get())
                .or_insert(0u32) += 1;
        }
        // Rank 8 is group 0 → most popular under power law.
        assert!(rank_counts[&8] > rank_counts[&128] * 2);
    }

    #[test]
    fn max_and_total_bytes() {
        let p = pool(10);
        assert_eq!(p.max_adapter_bytes(), 256 << 20); // rank 128 on Llama-7B
        assert_eq!(p.total_bytes(), p.iter().map(|a| a.bytes()).sum::<u64>());
    }

    #[test]
    fn tiny_pool_fewer_adapters_than_ranks() {
        let p = pool(3);
        assert_eq!(p.len(), 3);
        let mut rng = SimRng::seed(5);
        for _ in 0..100 {
            let a = p.sample(&mut rng);
            assert!(a.id().0 < 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = pool(50);
        let draw = |seed| {
            let mut rng = SimRng::seed(seed);
            (0..20)
                .map(|_| p.sample(&mut rng).id().0)
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
    }
}
