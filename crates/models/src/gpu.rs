//! GPU platform specifications.
//!
//! The paper evaluates on an NVIDIA A40 (48 GB) and an A100 configured with
//! 24/48/80 GB (§5.1, §5.5). Peak numbers come from the public datasheets;
//! the *effective* host→GPU copy bandwidth is calibrated so that a rank-128
//! Llama-7B adapter (256 MB) loads in ≈25 ms, matching the 17.5 % loading
//! share of the 144 ms TTFT in Figure 2.

use serde::{Deserialize, Serialize};

/// A GPU platform: memory capacity, bandwidths and compute throughput.
///
/// ```
/// use chameleon_models::GpuSpec;
/// let a40 = GpuSpec::a40();
/// assert_eq!(a40.memory_bytes(), 48 * (1 << 30));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    name: String,
    memory_bytes: u64,
    hbm_bytes_per_sec: f64,
    peak_fp16_flops: f64,
    /// Raw PCIe link capacity (for contention accounting).
    pcie_bytes_per_sec: f64,
    /// Achievable host→GPU copy bandwidth including driver, pinning and
    /// launch overheads — what an adapter transfer actually sees.
    effective_copy_bytes_per_sec: f64,
}

impl GpuSpec {
    /// Creates a custom GPU description.
    ///
    /// # Panics
    ///
    /// Panics if any capacity or rate is non-positive.
    pub fn new(
        name: impl Into<String>,
        memory_bytes: u64,
        hbm_bytes_per_sec: f64,
        peak_fp16_flops: f64,
        pcie_bytes_per_sec: f64,
        effective_copy_bytes_per_sec: f64,
    ) -> Self {
        assert!(memory_bytes > 0);
        assert!(hbm_bytes_per_sec > 0.0 && peak_fp16_flops > 0.0);
        assert!(pcie_bytes_per_sec > 0.0 && effective_copy_bytes_per_sec > 0.0);
        assert!(
            effective_copy_bytes_per_sec <= pcie_bytes_per_sec,
            "effective copy bandwidth cannot exceed the raw link"
        );
        GpuSpec {
            name: name.into(),
            memory_bytes,
            hbm_bytes_per_sec,
            peak_fp16_flops,
            pcie_bytes_per_sec,
            effective_copy_bytes_per_sec,
        }
    }

    /// NVIDIA A40: 48 GB GDDR6, 696 GB/s, 149.7 TFLOPS fp16 (dense),
    /// PCIe 4.0 x16. The paper's primary platform.
    pub fn a40() -> Self {
        GpuSpec::new("A40", 48 * (1 << 30), 696e9, 149.7e12, 31.5e9, 10e9)
    }

    /// NVIDIA A100 80 GB SXM: 2039 GB/s HBM2e, 312 TFLOPS fp16.
    pub fn a100_80gb() -> Self {
        GpuSpec::new("A100-80GB", 80 * (1 << 30), 2039e9, 312e12, 31.5e9, 12e9)
    }

    /// A100 artificially capped at 48 GB (§5.5 memory-scalability study).
    pub fn a100_48gb() -> Self {
        GpuSpec::new("A100-48GB", 48 * (1 << 30), 2039e9, 312e12, 31.5e9, 12e9)
    }

    /// A100 artificially capped at 24 GB (§5.5 memory-scalability study).
    pub fn a100_24gb() -> Self {
        GpuSpec::new("A100-24GB", 24 * (1 << 30), 2039e9, 312e12, 31.5e9, 12e9)
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device memory capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Device memory bandwidth (bytes/second).
    pub fn hbm_bytes_per_sec(&self) -> f64 {
        self.hbm_bytes_per_sec
    }

    /// Peak dense fp16 throughput (FLOP/second).
    pub fn peak_fp16_flops(&self) -> f64 {
        self.peak_fp16_flops
    }

    /// Raw PCIe link capacity (bytes/second).
    pub fn pcie_bytes_per_sec(&self) -> f64 {
        self.pcie_bytes_per_sec
    }

    /// Achievable host→GPU copy bandwidth (bytes/second).
    pub fn effective_copy_bytes_per_sec(&self) -> f64 {
        self.effective_copy_bytes_per_sec
    }

    /// Returns a copy with a different memory capacity, used by the §5.5
    /// memory-scaling study.
    pub fn with_memory_bytes(&self, memory_bytes: u64) -> Self {
        assert!(memory_bytes > 0);
        let mut g = self.clone();
        g.memory_bytes = memory_bytes;
        g.name = format!("{}@{}GB", self.name, memory_bytes >> 30);
        g
    }
}

impl std::fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a40_matches_datasheet() {
        let g = GpuSpec::a40();
        assert_eq!(g.memory_bytes() >> 30, 48);
        assert!((g.hbm_bytes_per_sec() - 696e9).abs() < 1.0);
        assert!((g.peak_fp16_flops() - 149.7e12).abs() < 1.0);
    }

    #[test]
    fn adapter_load_calibration() {
        // A rank-128 Llama-7B adapter is 256 MB (2 MB/rank, see adapter.rs);
        // at the calibrated copy bandwidth it should take ~25 ms, matching
        // the 17.5 % loading share of Figure 2's 144 ms TTFT.
        let g = GpuSpec::a40();
        let bytes = 256.0 * 1024.0 * 1024.0;
        let secs = bytes / g.effective_copy_bytes_per_sec();
        assert!((0.022..0.030).contains(&secs), "load time {secs}s");
    }

    #[test]
    fn memory_override() {
        let g = GpuSpec::a100_80gb().with_memory_bytes(24 * (1 << 30));
        assert_eq!(g.memory_bytes() >> 30, 24);
        assert!(g.name().contains("24GB"));
        // Bandwidths unchanged.
        assert_eq!(
            g.hbm_bytes_per_sec(),
            GpuSpec::a100_80gb().hbm_bytes_per_sec()
        );
    }

    #[test]
    fn a100_variants_share_compute() {
        let a = GpuSpec::a100_24gb();
        let b = GpuSpec::a100_80gb();
        assert_eq!(a.peak_fp16_flops(), b.peak_fp16_flops());
        assert!(a.memory_bytes() < b.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "effective copy bandwidth")]
    fn rejects_impossible_copy_bandwidth() {
        let _ = GpuSpec::new("bad", 1, 1.0, 1.0, 1.0, 2.0);
    }
}
