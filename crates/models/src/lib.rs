//! Hardware and model specifications for the Chameleon reproduction.
//!
//! This crate is the single source of truth for the *sizes* everything else
//! computes with:
//!
//! * [`llm`] — base-LLM architectures ([`LlmSpec`]): Llama-7B/13B/30B/70B and
//!   the other models §5.1 mentions (Falcon, OPT, Mixtral), with parameter
//!   counts, layer/hidden geometry and KV-cache byte formulas.
//! * [`gpu`] — GPU platforms ([`GpuSpec`]): A40 and A100 at the paper's three
//!   memory capacities, with HBM bandwidth, peak FLOPs and PCIe link speed.
//! * [`adapter`] — LoRA adapters ([`AdapterSpec`], [`AdapterRank`]): the
//!   rank → bytes formula calibrated to the paper (§3.2: rank-32 on Llama-7B
//!   = 64 MB).
//! * [`pool`] — adapter-pool generation ([`AdapterPool`]): `N_a` adapters,
//!   five rank groups, rank popularity × within-rank popularity
//!   distributions (uniform / power-law), exactly the §5.1 workload recipe.

pub mod adapter;
pub mod gpu;
pub mod llm;
pub mod pool;

pub use adapter::{AdapterId, AdapterRank, AdapterSpec};
pub use gpu::GpuSpec;
pub use llm::LlmSpec;
pub use pool::{AdapterPool, PoolConfig, PopularityDist};
