//! Seedable, forkable random-number streams.
//!
//! Every stochastic component of the simulation (arrival process, length
//! sampling, adapter assignment, predictor noise, ...) owns its own
//! [`SimRng`] forked from a single experiment seed. Forking gives
//! *stream independence*: adding a new consumer never perturbs the draws
//! seen by existing consumers, which keeps experiments comparable across
//! configurations.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number stream.
///
/// Wraps [`StdRng`] and adds [`fork`](SimRng::fork) for carving independent
/// sub-streams out of one seed.
///
/// ```
/// use chameleon_simcore::rng::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.f64(), b.f64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream labelled by `tag`.
    ///
    /// The same `(seed, tag)` pair always produces the same sub-stream; two
    /// different tags produce streams that do not overlap in practice.
    ///
    /// ```
    /// use chameleon_simcore::rng::SimRng;
    /// let mut root = SimRng::seed(1);
    /// let mut arrivals = root.fork("arrivals");
    /// let mut lengths = root.fork("lengths");
    /// assert_ne!(arrivals.f64(), lengths.f64());
    /// ```
    pub fn fork(&mut self, tag: &str) -> SimRng {
        // Mix the tag into a fresh seed via FNV-1a over the tag bytes plus a
        // draw from the parent stream. FNV keeps forks deterministic and
        // cheap without pulling in a hashing crate.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in tag.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let salt = self.inner.gen::<u64>();
        SimRng::seed(h ^ salt.rotate_left(17))
    }

    /// Draws a float uniformly from `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws an integer uniformly from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Draws a float uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen_bool(p)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mk = || {
            let mut root = SimRng::seed(9);
            let x = root.fork("x").next_u64();
            let y = root.fork("y").next_u64();
            (x, y)
        };
        let (x1, y1) = mk();
        let (x2, y2) = mk();
        assert_eq!((x1, y1), (x2, y2));
        assert_ne!(x1, y1);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::seed(5);
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items).unwrap()));
        assert_eq!(r.pick::<i32>(&[]), None);

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed(6);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
