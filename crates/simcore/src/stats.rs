//! Online statistics, histograms, and exact percentile extraction.
//!
//! The metrics layer needs three things: cheap running summaries
//! ([`OnlineStats`]), distribution shapes ([`Histogram`], [`Ecdf`]) and the
//! exact percentiles the paper reports ([`percentile`], P50/P99 of TTFT and
//! TBT). Everything here is deterministic and allocation-light.

use serde::{Deserialize, Serialize};

/// Welford-style running mean/variance plus min/max.
///
/// ```
/// use chameleon_simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile of a sample by sorting a copy (nearest-rank with linear
/// interpolation, the same convention NumPy's default uses).
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
///
/// ```
/// use chameleon_simcore::stats::percentile;
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile(&xs, 50.0), Some(25.0));
/// assert_eq!(percentile(&xs, 100.0), Some(40.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Some(percentile_of_sorted(&v, p))
}

/// Percentile of an already-sorted slice. Callers that extract several
/// percentiles should sort once and use this.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or the slice is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    assert!(!sorted.is_empty(), "empty sample");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Fixed-width histogram over `[lo, hi)` with an overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets spanning
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty/not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "zero bins");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            if idx >= self.counts.len() {
                self.overflow += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of regular buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Observations above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Midpoint of bucket `i`.
    pub fn bucket_mid(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Approximate quantile from bucket boundaries (upper edge of the bucket
    /// where the cumulative count crosses `q`).
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return Some(self.lo);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + (i as f64 + 1.0) * self.width);
            }
        }
        Some(self.lo + self.width * self.counts.len() as f64)
    }
}

/// Empirical CDF: the `(value, fraction ≤ value)` staircase of a sample.
///
/// This is the exact object plotted in Figures 7, 8 and 14 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample (copied and sorted).
    ///
    /// # Panics
    ///
    /// Panics if the sample contains NaN.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Ecdf { sorted }
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from an empty sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value with cumulative fraction ≥ `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Evenly spaced `(value, cum_fraction)` points for plotting, at most
    /// `max_points` of them.
    pub fn curve(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut pts = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            pts.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            pts.push((self.sorted[n - 1], 1.0));
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_matches_known_values() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(15.0));
        assert_eq!(percentile(&xs, 50.0), Some(35.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.total(), 102);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(0), 10);
        assert_eq!(h.bins(), 10);
        assert!((h.bucket_mid(0) - 0.5).abs() < 1e-12);
        let q = h.quantile(0.5).unwrap();
        assert!((4.0..=6.0).contains(&q), "median bucket {q}");
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 100) as f64).collect();
        let e = Ecdf::from_samples(&xs);
        let curve = e.curve(50);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// Histogram quantile brackets the exact nearest-rank order statistic
        /// within one bucket width (both use the ceil(q·n) rank convention).
        #[test]
        fn prop_histogram_quantile_close(xs in proptest::collection::vec(0.0f64..100.0, 10..500)) {
            let mut h = Histogram::new(0.0, 100.0, 100);
            for &x in &xs { h.record(x); }
            let approx = h.quantile(0.99).unwrap();
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((0.99 * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let exact = sorted[rank];
            prop_assert!(approx >= exact - 1e-9, "approx {approx} below exact {exact}");
            prop_assert!(approx <= exact + 1.0 + 1e-9, "approx {approx} too far above {exact}");
        }

        /// ECDF eval is a valid CDF: in [0,1] and monotone.
        #[test]
        fn prop_ecdf_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let e = Ecdf::from_samples(&xs);
            let mut prev = 0.0;
            for i in -10..=10 {
                let x = i as f64 * 100.0;
                let v = e.eval(x);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= prev);
                prev = v;
            }
        }

        /// Welford mean equals naive mean.
        #[test]
        fn prop_online_mean_matches(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }
    }
}
