//! Virtual time for the simulator.
//!
//! [`SimTime`] is an absolute instant on the simulated clock and
//! [`SimDuration`] is a span between instants. Both are newtypes over `u64`
//! nanoseconds, providing static distinction from wall-clock types
//! (`std::time::Instant`/`Duration`) and from raw counters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in nanoseconds since simulation
/// start.
///
/// ```
/// use chameleon_simcore::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use chameleon_simcore::time::SimDuration;
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from seconds (fractional) since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future
    /// (saturating), mirroring `Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a span from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid duration: {ms}ms");
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or not finite.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// True when the span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span from `rhs` to `self`, saturating at zero.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_secs_f64(), 1.5);
        assert_eq!((t - d).as_secs_f64(), 1.0);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 10);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(
            [d, d, d].into_iter().sum::<SimDuration>(),
            SimDuration::from_millis(30)
        );
    }

    #[test]
    fn display_picks_human_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs_f64(0.5).to_string(), "t=0.500000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(3);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(3);
        let y = SimDuration::from_nanos(9);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
