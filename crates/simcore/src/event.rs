//! Deterministic event queue.
//!
//! [`EventQueue`] is a min-heap keyed on `(SimTime, sequence)` so that events
//! scheduled for the same instant pop in insertion order. Determinism of the
//! whole simulation hinges on this tiebreak: two runs with the same seed must
//! interleave simultaneous events identically.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the heap. Ordering is reversed so `BinaryHeap` (a max-heap)
/// behaves as a min-heap on `(time, seq)`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A future-event list with stable FIFO ordering for simultaneous events.
///
/// ```
/// use chameleon_simcore::event::EventQueue;
/// use chameleon_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_nanos(100);
/// q.push(t, 'x');
/// q.push(t, 'y');
/// assert_eq!(q.pop(), Some((t, 'x')));
/// assert_eq!(q.pop(), Some((t, 'y')));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events pushed for the same instant fire in push order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaves_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(5), "b");
        assert_eq!(q.pop(), Some((t(5), "b")));
        q.push(t(7), "c");
        assert_eq!(q.pop(), Some((t(7), "c")));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(42), ());
        assert_eq!(q.peek_time(), Some(t(42)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        /// Popping everything yields a non-decreasing time sequence, and
        /// within equal times, insertion order.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ts) in times.iter().enumerate() {
                q.push(t(ts), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((ts, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(ts >= pt);
                    if ts == pt {
                        prop_assert!(idx > pidx, "FIFO violated for equal times");
                    }
                }
                prev = Some((ts, idx));
            }
        }

        /// The queue never loses or duplicates events.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..1000, 0..300)) {
            let mut q = EventQueue::new();
            for (i, &ts) in times.iter().enumerate() {
                q.push(t(ts), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx], "duplicate event");
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "lost event");
        }
    }
}
