//! Discrete-event simulation kernel for the Chameleon reproduction.
//!
//! This crate provides the foundation every other crate builds on:
//!
//! * [`time`] — nanosecond-resolution virtual time ([`SimTime`]) and spans
//!   ([`SimDuration`]), kept separate from wall-clock types so simulated and
//!   real time can never be confused.
//! * [`event`] — a deterministic event queue ([`EventQueue`]) with stable
//!   FIFO ordering for simultaneous events.
//! * [`rng`] — seedable, forkable random-number streams ([`SimRng`]) so each
//!   stochastic component owns an independent, reproducible stream.
//! * [`dist`] — the probability distributions the paper's workloads need
//!   (Poisson processes, log-normal, Zipf/power-law, ...).
//! * [`stats`] — online statistics, histograms and exact percentile
//!   extraction used by the metrics layer.
//! * [`shard`] — the epoch-synchronised sharded worker pool behind
//!   parallel cluster execution: stateful per-shard workers with
//!   coordinator barriers and deterministic (worker-count-independent)
//!   results.
//!
//! # Example
//!
//! ```
//! use chameleon_simcore::event::EventQueue;
//! use chameleon_simcore::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.push(SimTime::ZERO, "a");
//! let (t, ev) = q.pop().expect("event");
//! assert_eq!((t, ev), (SimTime::ZERO, "a"));
//! ```

pub mod dist;
pub mod event;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
