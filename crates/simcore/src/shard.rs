//! Epoch-synchronised sharded worker pool: stateful per-shard parallelism
//! with coordinator barriers.
//!
//! [`parallel_map`-style pools](https://docs.rs/rayon) fan *independent*
//! jobs out once; the parallel cluster loop needs something different:
//! a set of long-lived mutable shards (one serving engine each) that
//! worker threads advance *repeatedly*, in lockstep epochs, with the
//! coordinator regaining exclusive access to every shard between epochs
//! to make cross-shard decisions (routing, autoscaling). That is exactly
//! what [`with_shard_pool`] provides:
//!
//! * the coordinator calls [`ShardPool::epoch`] with `&mut [T]` and a
//!   per-epoch command `C`;
//! * workers claim shard indices from a shared atomic counter and run the
//!   pool's step function on each claimed `&mut T`;
//! * `epoch` returns only after every worker has finished, so the
//!   exclusive `&mut [T]` borrow is honoured — the coordinator never
//!   observes a shard mid-step.
//!
//! # Determinism
//!
//! Each shard is touched by exactly one worker per epoch and shards never
//! alias, so the result of an epoch is independent of worker count and
//! scheduling. A deterministic step function therefore yields
//! *bit-identical* shard states for every worker count — the property the
//! parallel-cluster determinism suite asserts byte-for-byte.
//!
//! # Synchronisation protocol
//!
//! One atomic epoch counter publishes work (release) and workers
//! acknowledge through an atomic remaining-count (release) that the
//! coordinator acquires; shard memory written by workers is visible to
//! the coordinator through that acquire, and the command + shard pointer
//! written by the coordinator are visible to workers through the epoch
//! acquire. Waits spin briefly and then yield, so oversubscribed pools
//! (more workers than cores — exercised by the determinism tests) stay
//! live, just slower.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker-count override from the `CHAMELEON_WORKERS` environment
/// variable (unset, empty, or unparsable → `None`; `0` → `None`, meaning
/// "auto"). CI sets `CHAMELEON_WORKERS=2` so the parallel cluster path is
/// exercised on every push regardless of runner width.
pub fn workers_from_env() -> Option<usize> {
    std::env::var("CHAMELEON_WORKERS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Spin briefly, then yield — keeps oversubscribed pools live.
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Shared coordinator ↔ worker state. Only [`with_shard_pool`] builds one.
struct Shared<T, C> {
    /// Monotone epoch id; a bump (release) publishes `cmd`/`shards`/`len`.
    epoch: AtomicU64,
    /// True once the pool is shutting down (read after an epoch bump).
    exit: AtomicBool,
    /// Next unclaimed shard index of the current epoch.
    next: AtomicUsize,
    /// Workers still running the current epoch.
    remaining: AtomicUsize,
    /// A worker unwound mid-epoch; the coordinator re-raises.
    poisoned: AtomicBool,
    /// When set, workers accumulate their per-epoch stepping time into
    /// `busy_ns` (the barrier profiler's utilisation input).
    profile: AtomicBool,
    /// Total wall-clock nanoseconds workers spent inside the claim-and-
    /// step loop, summed across workers and epochs.
    busy_ns: AtomicU64,
    /// Base pointer + length of the coordinator's `&mut [T]` for the
    /// current epoch. Written by the coordinator before the epoch bump,
    /// read by workers after it.
    shards: AtomicPtr<T>,
    len: AtomicUsize,
    /// The per-epoch command, written under the same protocol.
    cmd: UnsafeCell<Option<C>>,
}

// SAFETY: `cmd` is written by the coordinator strictly before the epoch
// bump that publishes it and read by workers strictly after; `shards` is
// a pointer to shards workers access at disjoint indices (the atomic
// claim counter hands out each index exactly once per epoch) and only
// while the coordinator is blocked inside `epoch`. `T: Send` makes the
// cross-thread `&mut T` handoff sound; `C: Sync` covers the shared `&C`.
unsafe impl<T: Send, C: Sync> Sync for Shared<T, C> {}

impl<T, C> Shared<T, C> {
    fn new() -> Self {
        Shared {
            epoch: AtomicU64::new(0),
            exit: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            profile: AtomicBool::new(false),
            busy_ns: AtomicU64::new(0),
            shards: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
            cmd: UnsafeCell::new(None),
        }
    }
}

/// Handle the coordinator drives epochs through (see [`with_shard_pool`]).
pub struct ShardPool<'a, T, C> {
    shared: &'a Shared<T, C>,
    workers: usize,
}

impl<T: Send, C: Sync> ShardPool<'_, T, C> {
    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Turns on worker busy-time accounting (see [`Self::busy_ns`]).
    /// Wall-clock measurement only — shard stepping itself is unaffected,
    /// so profiled runs stay bit-identical to unprofiled ones.
    pub fn enable_profiling(&self) {
        self.shared.profile.store(true, Ordering::Relaxed);
    }

    /// Total nanoseconds workers have spent stepping shards (claim loop
    /// included), summed across workers and epochs since profiling was
    /// enabled. Zero when profiling is off.
    pub fn busy_ns(&self) -> u64 {
        self.shared.busy_ns.load(Ordering::Relaxed)
    }

    /// Runs one epoch: every shard in `shards` is stepped once with `cmd`
    /// by some worker, and the call returns when all of them are done.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while stepping a shard.
    pub fn epoch(&self, shards: &mut [T], cmd: C) {
        let s = self.shared;
        // SAFETY: no worker reads `cmd` between epochs (they are either
        // spinning on `epoch` or exited), so the coordinator has exclusive
        // access here.
        unsafe { *s.cmd.get() = Some(cmd) };
        s.shards.store(shards.as_mut_ptr(), Ordering::Relaxed);
        s.len.store(shards.len(), Ordering::Relaxed);
        s.next.store(0, Ordering::Relaxed);
        s.remaining.store(self.workers, Ordering::Relaxed);
        s.epoch.fetch_add(1, Ordering::Release);
        let mut spins = 0;
        while s.remaining.load(Ordering::Acquire) != 0 {
            relax(&mut spins);
        }
        assert!(
            !s.poisoned.load(Ordering::Relaxed),
            "a shard-pool worker panicked"
        );
    }
}

/// Always-decrement guard so a panicking worker cannot deadlock the
/// coordinator's epoch wait.
struct EpochGuard<'a> {
    remaining: &'a AtomicUsize,
    poisoned: &'a AtomicBool,
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        self.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// Signals pool shutdown when dropped — **including on unwind**. Without
/// this, a panic in the coordinator body (a failed assertion inside the
/// cluster loop, or the poisoned-epoch re-raise itself) would skip the
/// exit signal and leave `std::thread::scope` joining workers that spin
/// forever waiting for an epoch that never comes: the process would hang
/// instead of propagating the panic.
struct ShutdownGuard<'a, T, C> {
    shared: &'a Shared<T, C>,
}

impl<T, C> Drop for ShutdownGuard<'_, T, C> {
    fn drop(&mut self) {
        self.shared.exit.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
    }
}

fn worker_loop<T, C>(shared: &Shared<T, C>, step: &(impl Fn(&C, &mut T) + Sync)) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0;
        let now = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            relax(&mut spins);
        };
        seen = now;
        if shared.exit.load(Ordering::Relaxed) {
            return;
        }
        let guard = EpochGuard {
            remaining: &shared.remaining,
            poisoned: &shared.poisoned,
        };
        let base = shared.shards.load(Ordering::Relaxed);
        let len = shared.len.load(Ordering::Relaxed);
        // SAFETY: the coordinator published `cmd` before this epoch's bump
        // and will not touch it again until every worker decremented
        // `remaining`.
        let cmd = unsafe { (*shared.cmd.get()).as_ref().expect("epoch without cmd") };
        let busy_since = shared
            .profile
            .load(Ordering::Relaxed)
            .then(std::time::Instant::now);
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            // SAFETY: `fetch_add` hands index `i` to exactly one worker,
            // the indices are in-bounds (`i < len`), and the coordinator
            // holds `&mut [T]` blocked in `epoch` — so this is the only
            // live reference to shard `i`.
            let shard = unsafe { &mut *base.add(i) };
            step(cmd, shard);
        }
        if let Some(since) = busy_since {
            shared
                .busy_ns
                .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        drop(guard);
    }
}

/// Creates a pool of `workers` scoped threads running `step` over shards
/// each epoch, hands the coordinator closure `body` a [`ShardPool`] to
/// drive epochs with, and tears the pool down when `body` returns.
///
/// With fewer than two workers there is nothing to parallelise: callers
/// should step shards inline instead (the cluster's serial path does).
///
/// # Panics
///
/// Panics if `workers == 0`; worker panics propagate when the scope joins.
pub fn with_shard_pool<T, C, R>(
    workers: usize,
    step: impl Fn(&C, &mut T) + Sync,
    body: impl FnOnce(&ShardPool<'_, T, C>) -> R,
) -> R
where
    T: Send,
    C: Sync,
{
    assert!(workers > 0, "shard pool needs at least one worker");
    let shared: Shared<T, C> = Shared::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = &shared;
            let step = &step;
            scope.spawn(move || worker_loop(shared, step));
        }
        // Dropped on both the normal and the unwinding path, so workers
        // always see the shutdown epoch and the scope can join.
        let _shutdown = ShutdownGuard { shared: &shared };
        let pool = ShardPool {
            shared: &shared,
            workers,
        };
        body(&pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_steps_exactly_once_per_epoch() {
        let mut shards: Vec<u64> = vec![0; 13];
        with_shard_pool(
            3,
            |add: &u64, shard: &mut u64| *shard += add,
            |pool| {
                for round in 1..=5u64 {
                    pool.epoch(&mut shards, round);
                }
            },
        );
        // 1+2+3+4+5 applied to every shard, each exactly once per epoch.
        assert!(shards.iter().all(|&v| v == 15), "{shards:?}");
    }

    #[test]
    fn matches_inline_for_every_worker_count() {
        let step = |mul: &u64, shard: &mut u64| *shard = shard.wrapping_mul(*mul) + 1;
        let mut reference: Vec<u64> = (0..57).collect();
        for round in 2..6u64 {
            for s in &mut reference {
                step(&round, s);
            }
        }
        for workers in [1, 2, 4, 16] {
            let mut shards: Vec<u64> = (0..57).collect();
            with_shard_pool(workers, step, |pool| {
                for round in 2..6u64 {
                    pool.epoch(&mut shards, round);
                }
            });
            assert_eq!(shards, reference, "workers={workers}");
        }
    }

    #[test]
    fn coordinator_can_mutate_shards_between_epochs() {
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); 4];
        with_shard_pool(
            2,
            |tag: &u64, shard: &mut Vec<u64>| shard.push(*tag),
            |pool| {
                pool.epoch(&mut shards, 1);
                shards.push(Vec::new()); // fleet grows at a barrier
                shards[0].push(99); // coordinator-side mutation
                pool.epoch(&mut shards, 2);
            },
        );
        assert_eq!(shards[0], vec![1, 99, 2]);
        assert_eq!(shards[4], vec![2], "late-joining shard steps too");
    }

    #[test]
    fn panics_propagate_instead_of_hanging() {
        // A panicking step must poison the epoch, re-raise on the
        // coordinator, and still shut the workers down so the scope can
        // join — a regression here deadlocks rather than failing.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut shards: Vec<u64> = vec![0; 8];
            with_shard_pool(
                2,
                |_: &(), shard: &mut u64| {
                    if *shard == 0 {
                        panic!("boom");
                    }
                },
                |pool| pool.epoch(&mut shards, ()),
            );
        }));
        assert!(result.is_err(), "worker panic was swallowed");
    }

    #[test]
    fn coordinator_panic_between_epochs_still_shuts_down() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut shards: Vec<u64> = vec![0; 4];
            with_shard_pool(
                2,
                |_: &(), shard: &mut u64| *shard += 1,
                |pool| {
                    pool.epoch(&mut shards, ());
                    panic!("coordinator failed after a clean epoch");
                },
            );
        }));
        assert!(result.is_err(), "coordinator panic was swallowed");
    }

    #[test]
    fn empty_shard_set_is_fine() {
        let mut shards: Vec<u8> = Vec::new();
        with_shard_pool(
            2,
            |_: &(), _: &mut u8| {},
            |pool| {
                pool.epoch(&mut shards, ());
                pool.epoch(&mut shards, ());
            },
        );
    }

    #[test]
    fn profiling_accumulates_busy_time_without_changing_results() {
        let step = |mul: &u64, shard: &mut u64| *shard = shard.wrapping_mul(*mul) + 1;
        let mut reference: Vec<u64> = (0..31).collect();
        for s in &mut reference {
            step(&3, s);
        }
        let mut shards: Vec<u64> = (0..31).collect();
        let busy = with_shard_pool(2, step, |pool| {
            assert_eq!(pool.busy_ns(), 0, "no accounting before opt-in");
            pool.enable_profiling();
            pool.epoch(&mut shards, 3);
            pool.busy_ns()
        });
        assert_eq!(shards, reference, "profiling must not perturb stepping");
        assert!(busy > 0, "profiled epoch accumulated busy time");
    }

    #[test]
    fn env_override_parses() {
        // Avoid touching the real environment: exercise the parse rules
        // through the public contract only when the variable is absent.
        if std::env::var("CHAMELEON_WORKERS").is_err() {
            assert_eq!(workers_from_env(), None);
        }
        assert!(default_workers() >= 1);
    }
}
