//! Probability distributions used by the workload and system models.
//!
//! The paper's methodology (§5.1) needs: Poisson arrivals (exponential
//! inter-arrival times), heavy-tailed request lengths (log-normal), skewed
//! adapter popularity (Zipf / power-law), and uniform choices. All samplers
//! draw from a [`SimRng`] so experiments stay deterministic.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over `f64` that can be sampled with a [`SimRng`].
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean, when known in closed form.
    fn mean(&self) -> f64;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Inter-arrival times of a Poisson process with `lambda` events per second.
///
/// ```
/// use chameleon_simcore::dist::{Exponential, Sample};
/// use chameleon_simcore::rng::SimRng;
/// let d = Exponential::new(8.0); // 8 requests per second
/// let mut rng = SimRng::seed(1);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert!((d.mean() - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with `lambda` events per unit time.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "invalid rate: {lambda}");
        Exponential { lambda }
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1-u avoids ln(0).
        -(1.0 - rng.f64()).ln() / self.lambda
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Log-normal distribution parameterised by the *underlying normal*'s
/// `mu` and `sigma`.
///
/// Used for the heavy-tailed input/output token lengths observed in the
/// Splitwise production trace (§3.3, Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal whose *median* is `median` and whose shape is
    /// `sigma`. Convenient because trace papers report medians.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not strictly positive.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Standard normal draw via Box–Muller.
    fn std_normal(rng: &mut SimRng) -> f64 {
        let u1: f64 = 1.0 - rng.f64(); // (0, 1]
        let u2: f64 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Self::std_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Zipf (power-law) distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ 1/k^s`.
///
/// Models the skewed adapter popularity of §5.1 ("power-law distribution for
/// adapter popularity within a rank"). Sampling is by inverse CDF over a
/// precomputed table, O(log n) per draw.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; larger `s` is more
    /// skewed. Typical adapter-popularity skew in the LoRA-serving
    /// literature uses `s ≈ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s.is_finite() && s >= 0.0, "invalid exponent: {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, exponent: s }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution covers no items (never: constructor
    /// forbids it), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws an item index in `[0, n)` (0 is the most popular item).
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of item `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - prev
    }
}

/// Uniform integer distribution over `[lo, hi]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformInt {
    lo: u64,
    hi: u64,
}

impl UniformInt {
    /// Creates the distribution; bounds are inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        UniformInt { lo, hi }
    }

    /// Draws a value.
    pub fn sample_int(&self, rng: &mut SimRng) -> u64 {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl Sample for UniformInt {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_int(rng) as f64
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }
}

/// A Poisson arrival process generating a stream of arrival instants.
///
/// ```
/// use chameleon_simcore::dist::PoissonProcess;
/// use chameleon_simcore::rng::SimRng;
/// use chameleon_simcore::time::SimTime;
///
/// let mut rng = SimRng::seed(11);
/// let mut p = PoissonProcess::new(10.0); // 10 req/s
/// let t1 = p.next_arrival(&mut rng);
/// let t2 = p.next_arrival(&mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    inter: Exponential,
    now: crate::time::SimTime,
}

impl PoissonProcess {
    /// Creates a process with `rate` arrivals per second, starting at t=0.
    pub fn new(rate: f64) -> Self {
        PoissonProcess {
            inter: Exponential::new(rate),
            now: crate::time::SimTime::ZERO,
        }
    }

    /// Advances the process and returns the next arrival instant.
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> crate::time::SimTime {
        let gap = SimDuration::from_secs_f64(self.inter.sample(rng));
        self.now += gap;
        self.now
    }

    /// The configured arrival rate (per second).
    pub fn rate(&self) -> f64 {
        self.inter.lambda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(4.0);
        let mut rng = SimRng::seed(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        assert!((emp - 0.25).abs() < 0.01, "empirical mean {emp}");
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::from_median(100.0, 0.8);
        let mut rng = SimRng::seed(2);
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median - 100.0).abs() / 100.0 < 0.05,
            "empirical median {median}"
        );
    }

    #[test]
    fn lognormal_is_heavy_tailed() {
        let d = LogNormal::from_median(100.0, 1.0);
        // Mean well above median is the heavy-tail signature.
        assert!(d.mean() > 150.0);
    }

    #[test]
    fn zipf_is_skewed_and_normalised() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > 10.0 * z.pmf(99));
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_head_dominates() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SimRng::seed(3);
        let mut counts = [0u32; 50];
        for _ in 0..50_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[25] * 5);
    }

    #[test]
    fn uniform_int_inclusive_bounds() {
        let d = UniformInt::new(3, 5);
        let mut rng = SimRng::seed(4);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = d.sample_int(&mut rng);
            assert!((3..=5).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[3] && seen[4] && seen[5]);
        assert_eq!(d.mean(), 4.0);
    }

    #[test]
    fn poisson_process_is_monotone_and_calibrated() {
        let mut p = PoissonProcess::new(8.0);
        let mut rng = SimRng::seed(5);
        let mut last = crate::time::SimTime::ZERO;
        let n = 8000;
        for _ in 0..n {
            let t = p.next_arrival(&mut rng);
            assert!(t >= last);
            last = t;
        }
        let horizon = last.as_secs_f64();
        let rate = n as f64 / horizon;
        assert!((rate - 8.0).abs() < 0.4, "empirical rate {rate}");
    }

    proptest! {
        #[test]
        fn prop_zipf_pmf_is_monotone_nonincreasing(n in 1usize..200, s in 0.0f64..3.0) {
            let z = Zipf::new(n, s);
            for k in 1..n {
                prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
            }
        }

        #[test]
        fn prop_exponential_nonnegative(lambda in 0.01f64..100.0, seed in 0u64..1000) {
            let d = Exponential::new(lambda);
            let mut rng = SimRng::seed(seed);
            prop_assert!(d.sample(&mut rng) >= 0.0);
        }
    }
}
