//! GPU substrate for the Chameleon reproduction.
//!
//! The paper's systems run on real A40/A100 GPUs; this crate replaces that
//! hardware with explicit, testable models:
//!
//! * [`memory`] — byte-accurate GPU memory accounting across the regions of
//!   Figure 6 (base weights, KV cache, adapters in use, adapter cache,
//!   activations).
//! * [`kv`] — a paged KV-cache allocator (block-granular, vLLM-style) that
//!   backs admission control and reproduces memory-pressure behaviour.
//! * [`pcie`] — the host→GPU DMA link as a serialising queue with byte
//!   accounting, reproducing the PCIe contention of Figure 4.
//! * [`cost`] — the analytic performance model (roofline prefill/decode,
//!   MBGMM LoRA overheads, tensor-parallel partitioning and sync) calibrated
//!   against the paper's own single-request measurements (Figures 2, 3, 5).

pub mod cost;
pub mod kv;
pub mod memory;
pub mod pcie;

pub use cost::CostModel;
pub use kv::KvAllocator;
pub use memory::{MemoryPool, OutOfMemory, Region};
pub use pcie::PcieLink;
