//! GPU memory accounting.
//!
//! [`MemoryPool`] tracks how every byte of device memory is spent, split
//! into the regions Figure 6 plots. It enforces the capacity invariant that
//! drives the whole paper: the adapter cache may only ever use memory that
//! nothing else needs, and must shrink the moment running requests need
//! the space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a span of GPU memory is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Base model weights (static for the lifetime of the engine).
    Weights,
    /// KV-cache blocks of running requests.
    KvCache,
    /// Adapters referenced by currently running requests.
    AdaptersInUse,
    /// The Chameleon adapter cache (idle adapters kept for reuse).
    AdapterCache,
    /// Transient activation workspace.
    Activations,
}

impl Region {
    /// All regions, in Figure 6's stacking order.
    pub const ALL: [Region; 5] = [
        Region::Weights,
        Region::KvCache,
        Region::AdaptersInUse,
        Region::AdapterCache,
        Region::Activations,
    ];

    fn index(self) -> usize {
        match self {
            Region::Weights => 0,
            Region::KvCache => 1,
            Region::AdaptersInUse => 2,
            Region::AdapterCache => 3,
            Region::Activations => 4,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Weights => "weights",
            Region::KvCache => "kv-cache",
            Region::AdaptersInUse => "adapters-in-use",
            Region::AdapterCache => "adapter-cache",
            Region::Activations => "activations",
        };
        f.write_str(s)
    }
}

/// Error returned when a reservation would exceed device capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes that were free at the time.
    pub free: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of GPU memory: requested {} bytes with {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Byte-accurate accounting of one GPU's memory.
///
/// ```
/// use chameleon_gpu::memory::{MemoryPool, Region};
///
/// let mut pool = MemoryPool::new(1_000);
/// pool.reserve(Region::Weights, 600).unwrap();
/// assert_eq!(pool.free(), 400);
/// assert!(pool.reserve(Region::KvCache, 500).is_err());
/// pool.release(Region::Weights, 600);
/// assert_eq!(pool.free(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPool {
    capacity: u64,
    used: [u64; 5],
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes of device memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "zero-capacity GPU");
        MemoryPool {
            capacity,
            used: [0; 5],
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved in `region`.
    pub fn used(&self, region: Region) -> u64 {
        self.used[region.index()]
    }

    /// Total bytes reserved across all regions.
    pub fn total_used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.total_used()
    }

    /// Reserves `bytes` in `region`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] (and reserves nothing) when fewer than
    /// `bytes` are free.
    pub fn reserve(&mut self, region: Region, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.free() {
            return Err(OutOfMemory {
                requested: bytes,
                free: self.free(),
            });
        }
        self.used[region.index()] += bytes;
        Ok(())
    }

    /// Releases `bytes` from `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` holds fewer than `bytes` — releasing memory that
    /// was never reserved is always an accounting bug.
    pub fn release(&mut self, region: Region, bytes: u64) {
        let u = &mut self.used[region.index()];
        assert!(
            *u >= bytes,
            "release of {bytes} bytes from {region} holding only {u}"
        );
        *u -= bytes;
    }

    /// Moves `bytes` from one region to another without passing through
    /// "free" (e.g. an adapter moving from the cache to in-use).
    ///
    /// # Panics
    ///
    /// Panics if `from` holds fewer than `bytes`.
    pub fn transfer(&mut self, from: Region, to: Region, bytes: u64) {
        self.release(from, bytes);
        self.used[to.index()] += bytes;
    }

    /// A `(region, bytes)` snapshot, in Figure 6 stacking order.
    pub fn snapshot(&self) -> [(Region, u64); 5] {
        [
            (Region::Weights, self.used[0]),
            (Region::KvCache, self.used[1]),
            (Region::AdaptersInUse, self.used[2]),
            (Region::AdapterCache, self.used[3]),
            (Region::Activations, self.used[4]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut p = MemoryPool::new(100);
        p.reserve(Region::KvCache, 30).unwrap();
        p.reserve(Region::AdapterCache, 20).unwrap();
        assert_eq!(p.used(Region::KvCache), 30);
        assert_eq!(p.total_used(), 50);
        assert_eq!(p.free(), 50);
        p.release(Region::KvCache, 30);
        p.release(Region::AdapterCache, 20);
        assert_eq!(p.free(), 100);
    }

    #[test]
    fn oom_reserves_nothing() {
        let mut p = MemoryPool::new(100);
        p.reserve(Region::Weights, 90).unwrap();
        let err = p.reserve(Region::KvCache, 20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.free, 10);
        assert_eq!(p.used(Region::KvCache), 0);
        assert_eq!(p.total_used(), 90);
        assert!(err.to_string().contains("out of GPU memory"));
    }

    #[test]
    fn transfer_between_regions() {
        let mut p = MemoryPool::new(100);
        p.reserve(Region::AdapterCache, 40).unwrap();
        p.transfer(Region::AdapterCache, Region::AdaptersInUse, 40);
        assert_eq!(p.used(Region::AdapterCache), 0);
        assert_eq!(p.used(Region::AdaptersInUse), 40);
        assert_eq!(p.total_used(), 40);
    }

    #[test]
    #[should_panic(expected = "release of")]
    fn over_release_panics() {
        let mut p = MemoryPool::new(100);
        p.reserve(Region::KvCache, 10).unwrap();
        p.release(Region::KvCache, 11);
    }

    #[test]
    fn snapshot_order_matches_figure6() {
        let p = MemoryPool::new(10);
        let snap = p.snapshot();
        assert_eq!(snap[0].0, Region::Weights);
        assert_eq!(snap[4].0, Region::Activations);
    }

    #[test]
    fn zero_byte_operations_are_noops() {
        let mut p = MemoryPool::new(10);
        p.reserve(Region::KvCache, 0).unwrap();
        p.release(Region::KvCache, 0);
        assert_eq!(p.free(), 10);
    }

    proptest! {
        /// Random reserve/release sequences never violate the capacity
        /// invariant and always balance back to empty.
        #[test]
        fn prop_accounting_invariant(ops in proptest::collection::vec((0usize..5, 0u64..50), 1..100)) {
            let mut p = MemoryPool::new(200);
            let mut ledger = [0u64; 5];
            for (r, bytes) in ops {
                let region = Region::ALL[r];
                if p.reserve(region, bytes).is_ok() {
                    ledger[r] += bytes;
                }
                prop_assert!(p.total_used() <= p.capacity());
                prop_assert_eq!(p.used(region), ledger[r]);
            }
            for (r, &held) in ledger.iter().enumerate() {
                p.release(Region::ALL[r], held);
            }
            prop_assert_eq!(p.total_used(), 0);
        }
    }
}
