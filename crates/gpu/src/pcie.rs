//! The host→GPU DMA link.
//!
//! Adapter weights move over PCIe, and §3.2 shows that in many-adapter
//! environments this link becomes the bottleneck: "With LoRA-500, the PCIe
//! bus is saturated". [`PcieLink`] models the link as a serialising DMA
//! queue — concurrent copy requests queue behind each other — with byte
//! accounting for the Figure 4 bandwidth study.

use chameleon_simcore::{SimDuration, SimTime};

/// One completed (or scheduled) transfer, for bandwidth accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// When the DMA engine started copying.
    pub start: SimTime,
    /// When the copy finished.
    pub end: SimTime,
    /// Payload size.
    pub bytes: u64,
}

/// A serialising host→GPU copy engine.
///
/// Transfers issued while the engine is busy queue up FIFO; the returned
/// completion time includes that queueing delay, which is exactly the
/// contention effect the paper measures.
///
/// ```
/// use chameleon_gpu::pcie::PcieLink;
/// use chameleon_simcore::SimTime;
///
/// let mut link = PcieLink::new(1e9); // 1 GB/s
/// let t0 = SimTime::ZERO;
/// let a = link.transfer(500_000_000, t0); // 0.5 s copy
/// let b = link.transfer(500_000_000, t0); // queues behind it
/// assert_eq!(a.end.as_secs_f64(), 0.5);
/// assert_eq!(b.start.as_secs_f64(), 0.5);
/// assert_eq!(b.end.as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PcieLink {
    bytes_per_sec: f64,
    busy_until: SimTime,
    total_bytes: u64,
    total_busy: SimDuration,
    history: Vec<TransferRecord>,
    record_history: bool,
}

impl PcieLink {
    /// Creates a link with the given effective copy bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid bandwidth"
        );
        PcieLink {
            bytes_per_sec,
            busy_until: SimTime::ZERO,
            total_bytes: 0,
            total_busy: SimDuration::ZERO,
            history: Vec::new(),
            record_history: true,
        }
    }

    /// Disables per-transfer history (long experiments that only need
    /// aggregate bandwidth).
    pub fn without_history(mut self) -> Self {
        self.record_history = false;
        self
    }

    /// Effective copy bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Pure copy duration of `bytes` with no queueing.
    pub fn copy_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Schedules a transfer of `bytes` requested at `now`; returns its
    /// start (after any queueing) and completion instants.
    pub fn transfer(&mut self, bytes: u64, now: SimTime) -> TransferRecord {
        let dur = self.copy_duration(bytes);
        self.transfer_with_duration(bytes, dur, now)
    }

    /// Schedules a transfer whose link occupancy is supplied by the caller
    /// (adapter loads issue hundreds of small per-layer copies, so their
    /// occupancy exceeds `bytes / bandwidth`; the cost model computes it).
    pub fn transfer_with_duration(
        &mut self,
        bytes: u64,
        occupancy: SimDuration,
        now: SimTime,
    ) -> TransferRecord {
        let start = now.max(self.busy_until);
        let end = start + occupancy;
        self.busy_until = end;
        self.total_bytes += bytes;
        self.total_busy += occupancy;
        let rec = TransferRecord { start, end, bytes };
        if self.record_history {
            self.history.push(rec);
        }
        rec
    }

    /// The instant the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay a transfer issued at `now` would experience.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Total payload bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total time the link spent copying.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Mean consumed bandwidth over `[0, horizon]` in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn mean_bandwidth(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_secs_f64();
        assert!(secs > 0.0, "zero horizon");
        self.total_bytes as f64 / secs
    }

    /// Link utilisation (busy fraction) over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.total_busy.as_secs_f64() / secs).min(1.0)
    }

    /// Per-transfer history (empty if disabled).
    pub fn history(&self) -> &[TransferRecord] {
        &self.history
    }

    /// Bytes transferred per time bin of width `bin` over `[0, horizon]`,
    /// attributing each transfer to the bin of its completion.
    pub fn binned_bytes(&self, horizon: SimTime, bin: SimDuration) -> Vec<u64> {
        assert!(!bin.is_zero(), "zero bin width");
        let nbins = (horizon.as_nanos() / bin.as_nanos() + 1) as usize;
        let mut out = vec![0u64; nbins];
        for rec in &self.history {
            let idx = (rec.end.as_nanos() / bin.as_nanos()) as usize;
            if idx < nbins {
                out[idx] += rec.bytes;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idle_link_copies_immediately() {
        let mut l = PcieLink::new(10e9);
        let rec = l.transfer(10_000_000_000, SimTime::from_secs_f64(2.0));
        assert_eq!(rec.start.as_secs_f64(), 2.0);
        assert_eq!(rec.end.as_secs_f64(), 3.0);
        assert_eq!(l.total_bytes(), 10_000_000_000);
    }

    #[test]
    fn transfers_serialize() {
        let mut l = PcieLink::new(1e9);
        let a = l.transfer(1_000_000_000, SimTime::ZERO);
        let b = l.transfer(2_000_000_000, SimTime::ZERO);
        let c = l.transfer(1_000_000_000, SimTime::from_secs_f64(10.0));
        assert_eq!(a.end.as_secs_f64(), 1.0);
        assert_eq!(b.start.as_secs_f64(), 1.0);
        assert_eq!(b.end.as_secs_f64(), 3.0);
        // Link drained by t=10; c starts immediately.
        assert_eq!(c.start.as_secs_f64(), 10.0);
        assert_eq!(
            l.queue_delay(SimTime::from_secs_f64(10.5)),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn utilization_and_mean_bandwidth() {
        let mut l = PcieLink::new(1e9);
        l.transfer(500_000_000, SimTime::ZERO); // busy 0.5 s
        let horizon = SimTime::from_secs_f64(2.0);
        assert!((l.utilization(horizon) - 0.25).abs() < 1e-9);
        assert!((l.mean_bandwidth(horizon) - 250e6).abs() < 1.0);
    }

    #[test]
    fn binned_accounting() {
        let mut l = PcieLink::new(1e9);
        l.transfer(100, SimTime::from_secs_f64(0.2)); // ends ~0.2
        l.transfer(200, SimTime::from_secs_f64(1.5)); // ends ~1.5
        let bins = l.binned_bytes(SimTime::from_secs_f64(2.0), SimDuration::from_secs(1));
        assert_eq!(bins[0], 100);
        assert_eq!(bins[1], 200);
    }

    #[test]
    fn history_can_be_disabled() {
        let mut l = PcieLink::new(1e9).without_history();
        l.transfer(100, SimTime::ZERO);
        assert!(l.history().is_empty());
        assert_eq!(l.total_bytes(), 100);
    }

    proptest! {
        /// No transfer overlaps another and ordering is FIFO.
        #[test]
        fn prop_fifo_no_overlap(reqs in proptest::collection::vec((0u64..1000, 1u64..1_000_000), 1..50)) {
            let mut l = PcieLink::new(1e6);
            let mut reqs = reqs;
            reqs.sort_by_key(|&(at, _)| at);
            let mut last_end = SimTime::ZERO;
            for (at, bytes) in reqs {
                let rec = l.transfer(bytes, SimTime::from_nanos(at * 1_000_000));
                prop_assert!(rec.start >= last_end);
                prop_assert!(rec.end >= rec.start);
                last_end = rec.end;
            }
        }
    }
}
