//! Analytic GPU performance model.
//!
//! Replaces the paper's CUDA measurements with a roofline-style model whose
//! calibration constants are fitted to the paper's *own* single-request
//! numbers, so every relative shape the evaluation depends on is preserved:
//!
//! * **Figure 2** — TTFT of a medium request grows 74 → 144 ms from rank 8
//!   to 128, with ≈17.5 % of the rank-128 TTFT spent loading and ≈40 %
//!   executing the adapter. This pins the effective copy bandwidth
//!   (≈10 GB/s), the dense-GEMM efficiency (0.45) and the MBGMM LoRA-kernel
//!   efficiency (0.008 — the gather kernels are an order of magnitude less
//!   efficient than dense GEMMs, corroborated by dLoRA's Figure 5).
//! * **Figure 3** — TTFT is linear in input size with a slope that grows
//!   with rank; follows from the same constants.
//! * **Figure 5** — the *fraction* of TTFT spent loading grows with tensor
//!   parallelism, because sharded loads pay per-GPU setup plus a
//!   synchronisation barrier while compute speeds up.
//!
//! Decode is modelled as memory-bound (weight + KV streaming at a fraction
//! of HBM bandwidth), the standard roofline result for autoregressive
//! generation.

use chameleon_models::adapter::adapter_bytes;
use chameleon_models::{AdapterRank, GpuSpec, LlmSpec};
use chameleon_simcore::SimDuration;

/// Calibration constants. See module docs for the provenance of each value.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Fraction of peak FLOPs dense prefill GEMMs achieve.
    pub prefill_efficiency: f64,
    /// Fraction of HBM bandwidth decode streaming achieves.
    pub decode_hbm_efficiency: f64,
    /// Fraction of peak FLOPs the MBGMM LoRA gather kernels achieve.
    pub lora_kernel_efficiency: f64,
    /// Extra HBM traffic factor for reading adapter weights during decode
    /// (gather kernels re-read and scatter).
    pub lora_decode_read_penalty: f64,
    /// Fixed prefill-iteration overhead (scheduling, launch, sampling).
    pub prefill_overhead: SimDuration,
    /// Fixed decode-iteration overhead.
    pub iter_overhead: SimDuration,
    /// Per-layer, per-projection LoRA kernel-launch cost.
    pub lora_launch_per_kernel: SimDuration,
    /// Parallel efficiency retained per doubling of tensor-parallel degree.
    pub tp_efficiency_per_doubling: f64,
    /// All-reduce latency constant per layer crossing.
    pub tp_allreduce_alpha: SimDuration,
    /// Inter-GPU (NVLink) bandwidth for all-reduce payloads.
    pub nvlink_bytes_per_sec: f64,
    /// Fixed host-side setup per adapter load (pinning, Python driver).
    pub load_setup: SimDuration,
    /// Latency of each small per-layer H2D copy an adapter load issues.
    pub load_per_copy: SimDuration,
    /// Additional per-GPU coordination cost when loading a sharded adapter
    /// under tensor parallelism.
    pub tp_per_gpu_load_setup: SimDuration,
    /// Synchronisation barrier after a sharded adapter load.
    pub tp_load_sync: SimDuration,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            prefill_efficiency: 0.45,
            decode_hbm_efficiency: 0.70,
            lora_kernel_efficiency: 0.008,
            lora_decode_read_penalty: 4.0,
            prefill_overhead: SimDuration::from_millis(8),
            iter_overhead: SimDuration::from_millis(3),
            lora_launch_per_kernel: SimDuration::from_micros(10),
            tp_efficiency_per_doubling: 0.85,
            tp_allreduce_alpha: SimDuration::from_micros(20),
            nvlink_bytes_per_sec: 600e9,
            load_setup: SimDuration::from_millis(4),
            load_per_copy: SimDuration::from_micros(30),
            tp_per_gpu_load_setup: SimDuration::from_millis(15),
            tp_load_sync: SimDuration::from_millis(20),
        }
    }
}

/// One sequence's contribution to a prefill iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillItem {
    /// Prompt tokens processed this iteration.
    pub tokens: u32,
    /// LoRA rank, or `None` for base-only execution.
    pub rank: Option<AdapterRank>,
}

/// One sequence's contribution to a decode iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeItem {
    /// KV-cache length (context) of the sequence.
    pub kv_tokens: u32,
    /// LoRA rank, or `None` for base-only execution.
    pub rank: Option<AdapterRank>,
}

/// TTFT decomposition of a single request, Figure 2's three bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillBreakdown {
    /// Base-model execution time.
    pub base_exec: SimDuration,
    /// Adapter (LoRA kernel) execution time.
    pub adapter_exec: SimDuration,
    /// Adapter weight loading time (host → GPU).
    pub adapter_load: SimDuration,
}

impl PrefillBreakdown {
    /// Total TTFT.
    pub fn total(&self) -> SimDuration {
        self.base_exec + self.adapter_exec + self.adapter_load
    }
}

/// The analytic cost model for one engine (one GPU, or one TP group).
#[derive(Debug, Clone)]
pub struct CostModel {
    llm: LlmSpec,
    gpu: GpuSpec,
    tp: u32,
    calib: Calibration,
}

impl CostModel {
    /// Creates a model for `llm` served on `tp`-way tensor-parallel `gpu`s.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or not a power of two.
    pub fn new(llm: LlmSpec, gpu: GpuSpec, tp: u32) -> Self {
        assert!(tp > 0 && tp.is_power_of_two(), "TP degree must be 2^k");
        CostModel {
            llm,
            gpu,
            tp,
            calib: Calibration::default(),
        }
    }

    /// Replaces the calibration constants (sensitivity studies).
    pub fn with_calibration(mut self, calib: Calibration) -> Self {
        self.calib = calib;
        self
    }

    /// The base model.
    pub fn llm(&self) -> &LlmSpec {
        &self.llm
    }

    /// The GPU platform.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> u32 {
        self.tp
    }

    /// The calibration constants in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Effective compute scale of the TP group: `tp · eff^log2(tp)`.
    fn tp_compute_scale(&self) -> f64 {
        let doublings = self.tp.trailing_zeros();
        self.tp as f64 * self.calib.tp_efficiency_per_doubling.powi(doublings as i32)
    }

    /// All-reduce time for an iteration moving `tokens` activations
    /// (2 all-reduces per layer, latency + bandwidth terms). Zero at TP1.
    fn tp_sync(&self, tokens: u64) -> SimDuration {
        if self.tp == 1 {
            return SimDuration::ZERO;
        }
        let payload = tokens as f64
            * f64::from(self.llm.hidden())
            * chameleon_models::llm::DTYPE_BYTES as f64;
        let per_crossing = self.calib.tp_allreduce_alpha
            + SimDuration::from_secs_f64(payload / self.calib.nvlink_bytes_per_sec);
        per_crossing * (2 * u64::from(self.llm.layers()))
    }

    /// Base-model compute time for a prefill over `tokens` tokens.
    pub fn base_prefill_time(&self, tokens: u64) -> SimDuration {
        let flops = self.llm.forward_flops(tokens);
        let rate =
            self.gpu.peak_fp16_flops() * self.calib.prefill_efficiency * self.tp_compute_scale();
        self.calib.prefill_overhead
            + SimDuration::from_secs_f64(flops / rate)
            + self.tp_sync(tokens)
    }

    /// LoRA kernel execution time for `tokens` tokens at `rank`.
    pub fn lora_prefill_time(&self, rank: AdapterRank, tokens: u64) -> SimDuration {
        let params = (adapter_bytes(&self.llm, rank) / chameleon_models::llm::DTYPE_BYTES) as f64;
        let flops = 2.0 * params * tokens as f64;
        let rate = self.gpu.peak_fp16_flops()
            * self.calib.lora_kernel_efficiency
            * self.tp_compute_scale();
        // One pair of gather kernels per adapted projection per layer.
        let launches =
            u64::from(self.llm.layers()) * chameleon_models::adapter::ADAPTED_PROJECTIONS * 2;
        self.calib.lora_launch_per_kernel * launches + SimDuration::from_secs_f64(flops / rate)
    }

    /// Duration of one prefill iteration over `batch`.
    ///
    /// Base compute batches across all prompts; LoRA compute is additive per
    /// sequence (the MBGMM kernels gather per-adapter).
    pub fn prefill_time(&self, batch: &[PrefillItem]) -> SimDuration {
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        let total_tokens: u64 = batch.iter().map(|i| u64::from(i.tokens)).sum();
        let mut t = self.base_prefill_time(total_tokens);
        for item in batch {
            if let Some(rank) = item.rank {
                t += self.lora_prefill_time(rank, u64::from(item.tokens));
            }
        }
        t
    }

    /// Duration of one decode iteration over `batch` (one token per
    /// sequence): weight streaming + KV streaming + LoRA reads + sync.
    pub fn decode_step_time(&self, batch: &[DecodeItem]) -> SimDuration {
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        let hbm = self.gpu.hbm_bytes_per_sec() * self.calib.decode_hbm_efficiency;
        // Per-GPU weight shard streams in parallel across the group.
        let weight_secs = self.llm.weight_bytes() as f64 / (self.tp as f64 * hbm);
        let kv_bytes: u64 = batch
            .iter()
            .map(|i| u64::from(i.kv_tokens) * self.llm.kv_bytes_per_token())
            .sum();
        let kv_secs = kv_bytes as f64 / (self.tp as f64 * hbm);
        // Each *distinct* adapter's weights are re-read by the gather
        // kernels once per iteration, with a scatter penalty.
        let mut ranks: Vec<AdapterRank> = batch.iter().filter_map(|i| i.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let lora_bytes: u64 = ranks.iter().map(|&r| adapter_bytes(&self.llm, r)).sum();
        let lora_secs =
            lora_bytes as f64 * self.calib.lora_decode_read_penalty / (self.tp as f64 * hbm);
        self.calib.iter_overhead
            + SimDuration::from_secs_f64(weight_secs + kv_secs + lora_secs)
            + self.tp_sync(batch.len() as u64)
    }

    /// Time to load an adapter of `bytes` from host memory, including the
    /// per-layer small-copy latencies that dominate small adapters.
    ///
    /// Under tensor parallelism each GPU receives its shard separately over
    /// the shared host link, pays per-GPU coordination, and the group
    /// synchronises afterwards — which is why the *fraction* of TTFT spent
    /// loading grows with TP (Figure 5).
    pub fn adapter_load_time(&self, bytes: u64) -> SimDuration {
        let copies =
            u64::from(self.llm.layers()) * chameleon_models::adapter::ADAPTED_PROJECTIONS * 2;
        let wire =
            SimDuration::from_secs_f64(bytes as f64 / self.gpu.effective_copy_bytes_per_sec());
        let base = self.calib.load_setup + self.calib.load_per_copy * copies + wire;
        if self.tp == 1 {
            base
        } else {
            base + self.calib.tp_per_gpu_load_setup * u64::from(self.tp) + self.calib.tp_load_sync
        }
    }

    /// Time the host PCIe link is occupied by that load (wire time plus the
    /// small-copy gaps; the link is held for the duration).
    pub fn adapter_link_occupancy(&self, bytes: u64) -> SimDuration {
        let copies =
            u64::from(self.llm.layers()) * chameleon_models::adapter::ADAPTED_PROJECTIONS * 2;
        self.calib.load_per_copy * copies
            + SimDuration::from_secs_f64(bytes as f64 / self.gpu.effective_copy_bytes_per_sec())
    }

    /// Figure 2's decomposition for a single request of `tokens` prompt
    /// tokens at `rank`, including a cold adapter load.
    pub fn prefill_breakdown(&self, tokens: u64, rank: AdapterRank) -> PrefillBreakdown {
        PrefillBreakdown {
            base_exec: self.base_prefill_time(tokens),
            adapter_exec: self.lora_prefill_time(rank, tokens),
            adapter_load: self.adapter_load_time(adapter_bytes(&self.llm, rank)),
        }
    }

    /// End-to-end latency of a request running *alone* on an idle engine:
    /// `(ttft, e2e)`. This is the denominator of the paper's per-request
    /// slowdown metric (§3.3) and the base of the SLO definition (§5.1).
    ///
    /// `cold_adapter` controls whether the adapter load is included (§3.3
    /// includes it).
    pub fn isolated_latency(
        &self,
        input_tokens: u32,
        output_tokens: u32,
        rank: Option<AdapterRank>,
        cold_adapter: bool,
    ) -> (SimDuration, SimDuration) {
        let load = match (rank, cold_adapter) {
            (Some(r), true) => self.adapter_load_time(adapter_bytes(&self.llm, r)),
            _ => SimDuration::ZERO,
        };
        let prefill = self.prefill_time(&[PrefillItem {
            tokens: input_tokens,
            rank,
        }]);
        let ttft = load + prefill;
        let mut e2e = ttft;
        // First output token comes from prefill; remaining ones decode.
        for step in 1..output_tokens {
            e2e += self.decode_step_time(&[DecodeItem {
                kv_tokens: input_tokens + step,
                rank,
            }]);
        }
        (ttft, e2e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 1)
    }

    /// Figure 2: medium request (256 tokens) TTFT grows from ~70 ms at rank
    /// 8 to ~145 ms at rank 128, with loading ≈15–20 % and adapter exec
    /// ≈35–45 % of the rank-128 total.
    #[test]
    fn figure2_shape_holds() {
        let m = model();
        let lo = m.prefill_breakdown(256, AdapterRank::new(8)).total();
        let hi = m.prefill_breakdown(256, AdapterRank::new(128));
        let total = hi.total();
        let ratio = total.as_secs_f64() / lo.as_secs_f64();
        assert!(
            (1.6..2.4).contains(&ratio),
            "rank-128/rank-8 TTFT ratio {ratio}"
        );
        assert!(
            (0.120..0.170).contains(&total.as_secs_f64()),
            "rank-128 TTFT {total}"
        );
        let load_frac = hi.adapter_load.as_secs_f64() / total.as_secs_f64();
        assert!(
            (0.12..0.25).contains(&load_frac),
            "load fraction {load_frac}"
        );
        let exec_frac = hi.adapter_exec.as_secs_f64() / total.as_secs_f64();
        assert!(
            (0.30..0.50).contains(&exec_frac),
            "exec fraction {exec_frac}"
        );
    }

    /// Figure 2: TTFT is monotone in rank.
    #[test]
    fn ttft_monotone_in_rank() {
        let m = model();
        let mut prev = SimDuration::ZERO;
        for r in AdapterRank::PAPER_SET {
            let t = m.prefill_breakdown(256, r).total();
            assert!(t > prev, "TTFT not monotone at {r}");
            prev = t;
        }
    }

    /// Figure 3: TTFT linear in input size; rank gap widens with input.
    #[test]
    fn figure3_shape_holds() {
        let m = model();
        let t = |tokens, rank| {
            m.prefill_time(&[PrefillItem {
                tokens,
                rank: Some(AdapterRank::new(rank)),
            }])
            .as_secs_f64()
        };
        // Rank-128 at 2000 tokens lands near the paper's ~0.8 s.
        let big = t(2000, 128);
        assert!((0.6..1.0).contains(&big), "r128@2000 = {big}s");
        // Gap between r128 and r8 grows with input size.
        let gap_small = t(250, 128) - t(250, 8);
        let gap_large = t(2000, 128) - t(2000, 8);
        assert!(gap_large > 4.0 * gap_small);
        // Linearity: doubling tokens roughly doubles the non-overhead part.
        let a = t(500, 32);
        let b = t(1000, 32);
        assert!(b > 1.7 * a - 0.02, "not linear: {a} vs {b}");
    }

    /// Figure 5: the loading *fraction* of TTFT increases with TP degree.
    #[test]
    fn figure5_loading_fraction_grows_with_tp() {
        let mut fracs = Vec::new();
        for tp in [2u32, 4, 8] {
            let m = CostModel::new(LlmSpec::llama_70b(), GpuSpec::a100_80gb(), tp);
            let b = m.prefill_breakdown(256, AdapterRank::new(32));
            fracs.push(b.adapter_load.as_secs_f64() / b.total().as_secs_f64());
        }
        assert!(
            fracs[0] < fracs[1] && fracs[1] < fracs[2],
            "fractions not increasing: {fracs:?}"
        );
        // TP4 rank-32 loading fraction is large (paper: 68 %).
        assert!(
            (0.35..0.85).contains(&fracs[1]),
            "TP4 loading fraction {}",
            fracs[1]
        );
    }

    /// Decode is memory-bound: a Llama-7B step on the A40 sits near the
    /// weight-streaming floor (~28 ms) for a single short sequence.
    #[test]
    fn decode_step_near_roofline() {
        let m = model();
        let t = m
            .decode_step_time(&[DecodeItem {
                kv_tokens: 128,
                rank: None,
            }])
            .as_secs_f64();
        assert!((0.025..0.045).contains(&t), "decode step {t}s");
    }

    /// Decode time grows with batch KV but is strongly sublinear in batch
    /// size (batching pays).
    #[test]
    fn decode_batching_amortises() {
        let m = model();
        let one = m.decode_step_time(&[DecodeItem {
            kv_tokens: 256,
            rank: None,
        }]);
        let batch: Vec<DecodeItem> = (0..16)
            .map(|_| DecodeItem {
                kv_tokens: 256,
                rank: None,
            })
            .collect();
        let sixteen = m.decode_step_time(&batch);
        assert!(sixteen < one * 3, "batch16 {sixteen} vs single {one}");
        assert!(sixteen > one);
    }

    /// Distinct adapters add decode cost; duplicate ranks are shared.
    #[test]
    fn decode_lora_deduplicates_ranks() {
        let m = model();
        let mk = |ranks: &[u32]| {
            let batch: Vec<DecodeItem> = ranks
                .iter()
                .map(|&r| DecodeItem {
                    kv_tokens: 100,
                    rank: Some(AdapterRank::new(r)),
                })
                .collect();
            m.decode_step_time(&batch)
        };
        let same = mk(&[32, 32, 32]);
        let mixed = mk(&[8, 32, 128]);
        assert!(mixed > same);
    }

    /// Adapter loads are monotone in size, and small adapters are dominated
    /// by fixed costs (so cost-aware eviction preferring to evict *small*
    /// adapters is rational — §4.2).
    #[test]
    fn load_time_monotone_and_fixed_cost_dominated() {
        let m = model();
        let small = m.adapter_load_time(16 << 20);
        let large = m.adapter_load_time(256 << 20);
        assert!(large > small);
        // 16× the bytes costs well under 16× the time.
        assert!(large.as_secs_f64() < 4.0 * small.as_secs_f64());
        // Rank-128 (256 MB) lands near the paper's ~25 ms.
        assert!(
            (0.020..0.040).contains(&large.as_secs_f64()),
            "256MB load {large}"
        );
    }

    /// TP makes loads absolutely slower despite sharding.
    #[test]
    fn tp_load_slower_than_single_gpu() {
        let single = CostModel::new(LlmSpec::llama_70b(), GpuSpec::a100_80gb(), 1);
        let tp4 = CostModel::new(LlmSpec::llama_70b(), GpuSpec::a100_80gb(), 4);
        let bytes = adapter_bytes(&LlmSpec::llama_70b(), AdapterRank::new(32));
        assert!(tp4.adapter_load_time(bytes) > single.adapter_load_time(bytes));
    }

    /// Isolated latency: E2E dominated by decode for long outputs; TTFT
    /// excludes load when the adapter is warm.
    #[test]
    fn isolated_latency_structure() {
        let m = model();
        let (ttft_cold, e2e) = m.isolated_latency(256, 64, Some(AdapterRank::new(32)), true);
        let (ttft_warm, _) = m.isolated_latency(256, 64, Some(AdapterRank::new(32)), false);
        assert!(ttft_cold > ttft_warm);
        assert!(e2e > ttft_cold + SimDuration::from_millis(63 * 25));
        let (ttft_base, _) = m.isolated_latency(256, 64, None, true);
        assert!(ttft_base < ttft_warm, "LoRA adds compute");
    }

    /// Empty batches cost nothing.
    #[test]
    fn empty_batches_are_free() {
        let m = model();
        assert_eq!(m.prefill_time(&[]), SimDuration::ZERO);
        assert_eq!(m.decode_step_time(&[]), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "TP degree")]
    fn rejects_non_power_of_two_tp() {
        let _ = CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 3);
    }

    /// Link occupancy never exceeds the full load latency and scales with
    /// bytes.
    #[test]
    fn link_occupancy_bounds() {
        let m = model();
        for bytes in [16u64 << 20, 64 << 20, 256 << 20] {
            let occ = m.adapter_link_occupancy(bytes);
            let load = m.adapter_load_time(bytes);
            assert!(occ <= load);
            assert!(!occ.is_zero());
        }
    }
}
