//! Paged KV-cache allocation.
//!
//! S-LoRA (like vLLM) allocates KV memory in fixed-size token blocks so that
//! sequences can grow during decode without reserving their worst case up
//! front. [`KvAllocator`] reproduces that: each running sequence owns
//! `ceil(tokens / block_size)` blocks, growth allocates blocks on demand,
//! and all bytes are accounted against [`Region::KvCache`] in the shared
//! [`MemoryPool`].

use crate::memory::{MemoryPool, OutOfMemory, Region};
use chameleon_workload::RequestId;
use std::collections::HashMap;

/// Default tokens per KV block (vLLM/S-LoRA use 16).
pub const DEFAULT_BLOCK_TOKENS: u32 = 16;

/// Block-granular KV-cache allocator backed by a [`MemoryPool`].
///
/// ```
/// use chameleon_gpu::kv::KvAllocator;
/// use chameleon_gpu::memory::MemoryPool;
/// use chameleon_workload::RequestId;
///
/// let mut mem = MemoryPool::new(1 << 30);
/// let mut kv = KvAllocator::new(1024, 16); // 1 KiB per token, 16-token blocks
/// kv.allocate(&mut mem, RequestId(0), 100).unwrap();
/// assert_eq!(kv.tokens_of(RequestId(0)), Some(100));
/// kv.grow(&mut mem, RequestId(0), 1).unwrap();
/// kv.free(&mut mem, RequestId(0));
/// assert_eq!(mem.free(), 1 << 30);
/// ```
#[derive(Debug, Clone)]
pub struct KvAllocator {
    bytes_per_token: u64,
    block_tokens: u32,
    /// Per-sequence (token count, block count).
    seqs: HashMap<RequestId, (u32, u32)>,
    total_blocks: u64,
    /// Hybrid-cache proxy entries: demoted sequences holding a compact
    /// hidden-state proxy (bytes) instead of full block-granular KV.
    proxies: HashMap<RequestId, u64>,
    proxy_bytes_total: u64,
}

impl KvAllocator {
    /// Creates an allocator for a model with `bytes_per_token` of KV state,
    /// using blocks of `block_tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(bytes_per_token: u64, block_tokens: u32) -> Self {
        assert!(bytes_per_token > 0 && block_tokens > 0);
        KvAllocator {
            bytes_per_token,
            block_tokens,
            seqs: HashMap::new(),
            total_blocks: 0,
            proxies: HashMap::new(),
            proxy_bytes_total: 0,
        }
    }

    /// Bytes one block occupies.
    pub fn block_bytes(&self) -> u64 {
        self.bytes_per_token * u64::from(self.block_tokens)
    }

    /// Bytes of KV state per token.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(&self, tokens: u32) -> u32 {
        tokens.div_ceil(self.block_tokens)
    }

    /// Bytes needed to hold `tokens` tokens (block-rounded).
    pub fn bytes_for(&self, tokens: u32) -> u64 {
        u64::from(self.blocks_for(tokens)) * self.block_bytes()
    }

    /// Registers a new sequence holding `tokens` tokens (its prompt).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool cannot hold the blocks; nothing
    /// is allocated in that case.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn allocate(
        &mut self,
        mem: &mut MemoryPool,
        id: RequestId,
        tokens: u32,
    ) -> Result<(), OutOfMemory> {
        assert!(!self.seqs.contains_key(&id), "{id} already has KV state");
        let blocks = self.blocks_for(tokens);
        mem.reserve(Region::KvCache, u64::from(blocks) * self.block_bytes())?;
        self.seqs.insert(id, (tokens, blocks));
        self.total_blocks += u64::from(blocks);
        Ok(())
    }

    /// Appends `new_tokens` tokens to a sequence, allocating blocks as
    /// needed (zero bytes when the current block has room).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when a new block is needed but doesn't fit;
    /// the sequence keeps its old size in that case.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not registered.
    pub fn grow(
        &mut self,
        mem: &mut MemoryPool,
        id: RequestId,
        new_tokens: u32,
    ) -> Result<(), OutOfMemory> {
        let (tokens, blocks) = *self.seqs.get(&id).unwrap_or_else(|| panic!("{id} unknown"));
        let target_tokens = tokens + new_tokens;
        let target_blocks = self.blocks_for(target_tokens);
        if target_blocks > blocks {
            let extra = target_blocks - blocks;
            mem.reserve(Region::KvCache, u64::from(extra) * self.block_bytes())?;
            self.total_blocks += u64::from(extra);
        }
        self.seqs.insert(id, (target_tokens, target_blocks));
        Ok(())
    }

    /// Releases all KV state of a sequence.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not registered.
    pub fn free(&mut self, mem: &mut MemoryPool, id: RequestId) {
        let (_, blocks) = self
            .seqs
            .remove(&id)
            .unwrap_or_else(|| panic!("{id} unknown"));
        mem.release(Region::KvCache, u64::from(blocks) * self.block_bytes());
        self.total_blocks -= u64::from(blocks);
    }

    /// Demotes a full sequence to a compact hidden-state proxy entry
    /// (Apt-Serve's hybrid cache): all blocks are released and
    /// `ratio` of the freed bytes (at least one) stays resident as the
    /// proxy. Returns `(full_bytes_freed, proxy_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered sequence, already holds a
    /// proxy, or `ratio` is not in `(0, 1)`.
    pub fn demote(&mut self, mem: &mut MemoryPool, id: RequestId, ratio: f64) -> (u64, u64) {
        assert!(ratio > 0.0 && ratio < 1.0, "proxy ratio must be in (0,1)");
        assert!(!self.proxies.contains_key(&id), "{id} already demoted");
        let (_, blocks) = self
            .seqs
            .remove(&id)
            .unwrap_or_else(|| panic!("{id} unknown"));
        let full = u64::from(blocks) * self.block_bytes();
        mem.release(Region::KvCache, full);
        self.total_blocks -= u64::from(blocks);
        let proxy = ((full as f64 * ratio) as u64).max(1);
        // Always fits: strictly less than the bytes just released.
        mem.reserve(Region::KvCache, proxy)
            .expect("proxy smaller than freed KV");
        self.proxies.insert(id, proxy);
        self.proxy_bytes_total += proxy;
        (full, proxy)
    }

    /// Restores a demoted sequence to full residency at `tokens` tokens.
    /// The full footprint is reserved *before* the proxy is dropped, so a
    /// failed restore leaves the proxy (and the pool) untouched. Returns
    /// the proxy bytes released (the PCIe transfer the caller models).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the full footprint doesn't fit.
    ///
    /// # Panics
    ///
    /// Panics if `id` holds no proxy or is somehow still a full sequence.
    pub fn restore(
        &mut self,
        mem: &mut MemoryPool,
        id: RequestId,
        tokens: u32,
    ) -> Result<u64, OutOfMemory> {
        assert!(self.proxies.contains_key(&id), "{id} holds no proxy");
        assert!(!self.seqs.contains_key(&id), "{id} still has full KV");
        let blocks = self.blocks_for(tokens);
        mem.reserve(Region::KvCache, u64::from(blocks) * self.block_bytes())?;
        let proxy = self.proxies.remove(&id).unwrap();
        mem.release(Region::KvCache, proxy);
        self.proxy_bytes_total -= proxy;
        self.seqs.insert(id, (tokens, blocks));
        self.total_blocks += u64::from(blocks);
        Ok(proxy)
    }

    /// Discards a proxy without restoring it (crash / evacuation paths).
    /// Returns the bytes released.
    ///
    /// # Panics
    ///
    /// Panics if `id` holds no proxy.
    pub fn drop_proxy(&mut self, mem: &mut MemoryPool, id: RequestId) -> u64 {
        let proxy = self
            .proxies
            .remove(&id)
            .unwrap_or_else(|| panic!("{id} holds no proxy"));
        mem.release(Region::KvCache, proxy);
        self.proxy_bytes_total -= proxy;
        proxy
    }

    /// Whether a sequence currently holds a proxy entry.
    pub fn has_proxy(&self, id: RequestId) -> bool {
        self.proxies.contains_key(&id)
    }

    /// Total bytes held by proxy entries.
    pub fn proxy_bytes(&self) -> u64 {
        self.proxy_bytes_total
    }

    /// Tokens currently held by a sequence, if registered.
    pub fn tokens_of(&self, id: RequestId) -> Option<u32> {
        self.seqs.get(&id).map(|&(t, _)| t)
    }

    /// Number of registered sequences.
    pub fn num_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Total blocks currently allocated.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Total KV bytes currently allocated: full block-granular sequences
    /// plus resident proxy entries — by construction always equal to the
    /// pool's [`Region::KvCache`] usage.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocks * self.block_bytes() + self.proxy_bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (MemoryPool, KvAllocator) {
        (MemoryPool::new(1 << 20), KvAllocator::new(64, 16))
    }

    #[test]
    fn block_rounding() {
        let (_, kv) = setup();
        assert_eq!(kv.blocks_for(1), 1);
        assert_eq!(kv.blocks_for(16), 1);
        assert_eq!(kv.blocks_for(17), 2);
        assert_eq!(kv.bytes_for(17), 2 * 16 * 64);
        assert_eq!(kv.block_bytes(), 1024);
        assert_eq!(kv.bytes_per_token(), 64);
    }

    #[test]
    fn allocate_grow_free_roundtrip() {
        let (mut mem, mut kv) = setup();
        kv.allocate(&mut mem, RequestId(1), 20).unwrap(); // 2 blocks
        assert_eq!(mem.used(Region::KvCache), 2048);
        kv.grow(&mut mem, RequestId(1), 10).unwrap(); // 30 tokens → 2 blocks
        assert_eq!(mem.used(Region::KvCache), 2048);
        kv.grow(&mut mem, RequestId(1), 3).unwrap(); // 33 tokens → 3 blocks
        assert_eq!(mem.used(Region::KvCache), 3072);
        assert_eq!(kv.tokens_of(RequestId(1)), Some(33));
        kv.free(&mut mem, RequestId(1));
        assert_eq!(mem.used(Region::KvCache), 0);
        assert_eq!(kv.num_seqs(), 0);
        assert_eq!(kv.total_blocks(), 0);
    }

    #[test]
    fn oom_keeps_state_consistent() {
        let mut mem = MemoryPool::new(2048); // room for 2 blocks
        let mut kv = KvAllocator::new(64, 16);
        kv.allocate(&mut mem, RequestId(1), 16).unwrap();
        // 3 more blocks don't fit.
        assert!(kv.allocate(&mut mem, RequestId(2), 48).is_err());
        assert_eq!(kv.num_seqs(), 1);
        assert_eq!(kv.tokens_of(RequestId(2)), None);
        // Growth failure leaves the sequence unchanged.
        kv.grow(&mut mem, RequestId(1), 1).unwrap(); // 17 tokens → 2 blocks, fits
        assert!(kv.grow(&mut mem, RequestId(1), 32).is_err());
        assert_eq!(kv.tokens_of(RequestId(1)), Some(17));
    }

    #[test]
    fn demote_restore_roundtrip() {
        let (mut mem, mut kv) = setup();
        kv.allocate(&mut mem, RequestId(1), 33).unwrap(); // 3 blocks
        assert_eq!(mem.used(Region::KvCache), 3072);
        let (full, proxy) = kv.demote(&mut mem, RequestId(1), 0.125);
        assert_eq!(full, 3072);
        assert_eq!(proxy, 384);
        assert!(kv.has_proxy(RequestId(1)));
        assert_eq!(kv.tokens_of(RequestId(1)), None);
        assert_eq!(kv.proxy_bytes(), 384);
        assert_eq!(mem.used(Region::KvCache), 384);
        assert_eq!(kv.total_bytes(), mem.used(Region::KvCache));
        let moved = kv.restore(&mut mem, RequestId(1), 40).unwrap(); // 3 blocks
        assert_eq!(moved, 384);
        assert!(!kv.has_proxy(RequestId(1)));
        assert_eq!(kv.tokens_of(RequestId(1)), Some(40));
        assert_eq!(kv.proxy_bytes(), 0);
        assert_eq!(mem.used(Region::KvCache), 3072);
        assert_eq!(kv.total_bytes(), mem.used(Region::KvCache));
        kv.free(&mut mem, RequestId(1));
        assert_eq!(mem.used(Region::KvCache), 0);
    }

    #[test]
    fn failed_restore_keeps_the_proxy() {
        let mut mem = MemoryPool::new(4096); // 4 blocks
        let mut kv = KvAllocator::new(64, 16);
        kv.allocate(&mut mem, RequestId(1), 48).unwrap(); // 3 blocks
        kv.demote(&mut mem, RequestId(1), 0.5);
        // Eat the freed memory so the full footprint no longer fits.
        mem.reserve(Region::Activations, mem.free()).unwrap();
        assert!(kv.restore(&mut mem, RequestId(1), 48).is_err());
        assert!(kv.has_proxy(RequestId(1)));
        assert_eq!(kv.total_bytes(), mem.used(Region::KvCache));
        assert_eq!(kv.drop_proxy(&mut mem, RequestId(1)), 1536);
        assert_eq!(mem.used(Region::KvCache), 0);
        assert_eq!(kv.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "holds no proxy")]
    fn restore_without_proxy_panics() {
        let (mut mem, mut kv) = setup();
        let _ = kv.restore(&mut mem, RequestId(7), 16);
    }

    #[test]
    #[should_panic(expected = "already has KV state")]
    fn double_allocate_panics() {
        let (mut mem, mut kv) = setup();
        kv.allocate(&mut mem, RequestId(1), 1).unwrap();
        let _ = kv.allocate(&mut mem, RequestId(1), 1);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn free_unknown_panics() {
        let (mut mem, mut kv) = setup();
        kv.free(&mut mem, RequestId(9));
    }

    proptest! {
        /// Arbitrary allocate/grow/free/demote/restore interleavings: the
        /// allocator's view and the memory pool never diverge, and
        /// everything frees cleanly.
        #[test]
        fn prop_no_leaks(ops in proptest::collection::vec((0u64..8, 0u8..5, 1u32..100), 1..200)) {
            let mut mem = MemoryPool::new(1 << 24);
            let mut kv = KvAllocator::new(64, 16);
            for (id, op, tokens) in ops {
                let id = RequestId(id);
                match op {
                    0 => {
                        if kv.tokens_of(id).is_none() && !kv.has_proxy(id) {
                            let _ = kv.allocate(&mut mem, id, tokens);
                        }
                    }
                    1 => {
                        if kv.tokens_of(id).is_some() {
                            let _ = kv.grow(&mut mem, id, tokens);
                        }
                    }
                    2 => {
                        if kv.tokens_of(id).is_some() {
                            kv.free(&mut mem, id);
                        }
                    }
                    3 => {
                        if kv.tokens_of(id).is_some() {
                            kv.demote(&mut mem, id, 0.125);
                        }
                    }
                    _ => {
                        if kv.has_proxy(id) {
                            let _ = kv.restore(&mut mem, id, tokens);
                        }
                    }
                }
                prop_assert_eq!(kv.total_bytes(), mem.used(Region::KvCache));
            }
            let ids: Vec<RequestId> = (0..8).map(RequestId).collect();
            for id in ids {
                if kv.tokens_of(id).is_some() {
                    kv.free(&mut mem, id);
                } else if kv.has_proxy(id) {
                    kv.drop_proxy(&mut mem, id);
                }
            }
            prop_assert_eq!(mem.used(Region::KvCache), 0);
            prop_assert_eq!(kv.total_bytes(), 0);
        }
    }
}
