//! Barrier/epoch profiling: where a cluster run's wall-clock time goes.
//!
//! The epoch-synchronised cluster alternates coordinator work (dispatch,
//! autoscaling, predictive warms) with engine stepping between barriers.
//! The profile splits the run into the three buckets the ROADMAP's
//! barrier-amortisation work needs a baseline for:
//!
//! * **dispatch** — coordinator wall time outside epoch stepping;
//! * **step** — wall time inside epoch stepping (serial loop or pool);
//! * **barrier wait** — for pool epochs, worker-seconds spent parked at
//!   the barrier: `pool_step_wall × workers − Σ worker busy`.
//!
//! These are wall-clock measurements, so they are host-dependent by
//! design and live **outside** the deterministic trace stream — enabling
//! profiling never perturbs simulation results, and profiles are never
//! byte-compared.

/// Wall-clock breakdown of one cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BarrierProfile {
    /// Worker threads in the pool (0 for serial execution).
    pub workers: usize,
    /// Coordinator epochs executed (barrier-to-barrier rounds).
    pub epochs: u64,
    /// Epochs dispatched to the worker pool (≥2 engines had pending
    /// work); the rest stepped inline on the coordinator thread.
    pub pool_epochs: u64,
    /// Wall nanoseconds of the whole run loop.
    pub run_wall_ns: u64,
    /// Wall nanoseconds inside epoch stepping (inline + pool).
    pub step_wall_ns: u64,
    /// Wall nanoseconds of pool-dispatched epochs only.
    pub pool_step_wall_ns: u64,
    /// Summed per-worker nanoseconds actually spent stepping engines
    /// during pool epochs.
    pub worker_busy_ns: u64,
}

impl BarrierProfile {
    /// Coordinator wall time outside epoch stepping.
    pub fn dispatch_wall_ns(&self) -> u64 {
        self.run_wall_ns.saturating_sub(self.step_wall_ns)
    }

    /// Worker-nanoseconds parked at the epoch barrier (0 for serial runs).
    pub fn barrier_wait_ns(&self) -> u64 {
        (self.pool_step_wall_ns)
            .saturating_mul(self.workers as u64)
            .saturating_sub(self.worker_busy_ns)
    }

    /// Fraction of run wall spent stepping engines.
    pub fn step_share(&self) -> f64 {
        share(self.step_wall_ns, self.run_wall_ns)
    }

    /// Fraction of run wall spent in coordinator dispatch.
    pub fn dispatch_share(&self) -> f64 {
        share(self.dispatch_wall_ns(), self.run_wall_ns)
    }

    /// Barrier wait as a fraction of the pool's total worker-seconds
    /// (how much of the hired capacity idled at barriers).
    pub fn barrier_wait_share(&self) -> f64 {
        share(
            self.barrier_wait_ns(),
            self.pool_step_wall_ns.saturating_mul(self.workers as u64),
        )
    }

    /// Mean engine-stepping nanoseconds per epoch.
    pub fn mean_epoch_ns(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.step_wall_ns as f64 / self.epochs as f64
        }
    }

    /// Folds another run's profile into this one (sweeps aggregate).
    pub fn merge(&mut self, other: &BarrierProfile) {
        self.workers = self.workers.max(other.workers);
        self.epochs += other.epochs;
        self.pool_epochs += other.pool_epochs;
        self.run_wall_ns += other.run_wall_ns;
        self.step_wall_ns += other.step_wall_ns;
        self.pool_step_wall_ns += other.pool_step_wall_ns;
        self.worker_busy_ns += other.worker_busy_ns;
    }
}

fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_and_waits() {
        let p = BarrierProfile {
            workers: 4,
            epochs: 10,
            pool_epochs: 8,
            run_wall_ns: 1_000,
            step_wall_ns: 600,
            pool_step_wall_ns: 500,
            worker_busy_ns: 1_200,
        };
        assert_eq!(p.dispatch_wall_ns(), 400);
        // 500 * 4 workers - 1200 busy = 800 parked.
        assert_eq!(p.barrier_wait_ns(), 800);
        assert!((p.step_share() - 0.6).abs() < 1e-12);
        assert!((p.dispatch_share() - 0.4).abs() < 1e-12);
        assert!((p.barrier_wait_share() - 0.4).abs() < 1e-12);
        assert!((p.mean_epoch_ns() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn zero_profile_is_quiet() {
        let p = BarrierProfile::default();
        assert_eq!(p.barrier_wait_ns(), 0);
        assert_eq!(p.step_share(), 0.0);
        assert_eq!(p.mean_epoch_ns(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BarrierProfile {
            workers: 2,
            epochs: 1,
            pool_epochs: 1,
            run_wall_ns: 10,
            step_wall_ns: 5,
            pool_step_wall_ns: 5,
            worker_busy_ns: 8,
        };
        a.merge(&BarrierProfile {
            workers: 4,
            epochs: 2,
            pool_epochs: 0,
            run_wall_ns: 20,
            step_wall_ns: 10,
            pool_step_wall_ns: 0,
            worker_busy_ns: 0,
        });
        assert_eq!(a.workers, 4);
        assert_eq!(a.epochs, 3);
        assert_eq!(a.run_wall_ns, 30);
        assert_eq!(a.step_wall_ns, 15);
    }
}
