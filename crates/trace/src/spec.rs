//! Plain-data trace configuration carried by the experiment config.

use chameleon_simcore::SimDuration;

/// Tracing configuration: which anomaly predicates arm the flight
/// recorder and how much history it keeps. Tracing as a whole is opted
/// into by the presence of this spec (`SystemConfig::trace: Option<..>`);
/// with it absent, no layer allocates a buffer or emits an event and
/// every run is byte-for-byte what it was before tracing existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Flight-recorder ring length (last N decisions per dump).
    pub flight_capacity: usize,
    /// Maximum dumps materialised per run (firings past this still count).
    pub max_dumps: usize,
    /// Arm the TTFT-over-SLO predicate with this SLO.
    pub ttft_slo_trigger: Option<SimDuration>,
    /// Arm the pre-warmed-adapter-evicted-before-use predicate.
    pub wasted_warm_trigger: bool,
    /// Arm the retry-storm predicate: fires when at least `count` retries
    /// land within any `window` of simulated time.
    pub retry_storm_trigger: Option<(u32, SimDuration)>,
    /// Arm the shed-while-idle-capacity predicate (a request was shed
    /// while at least one active engine sat idle).
    pub shed_idle_trigger: bool,
    /// Arm the replica-colocated-with-primary predicate: a pre-replicated
    /// warm landed in the primary's fault domain while another domain had
    /// capacity. Needs a fleet topology to resolve racks; a no-op without
    /// one.
    pub colocated_replica_trigger: bool,
}

impl TraceSpec {
    /// Tracing on, flight recorder armed with no predicates: a 64-event
    /// ring, at most 8 dumps.
    pub fn new() -> Self {
        TraceSpec {
            flight_capacity: 64,
            max_dumps: 8,
            ttft_slo_trigger: None,
            wasted_warm_trigger: false,
            retry_storm_trigger: None,
            shed_idle_trigger: false,
            colocated_replica_trigger: false,
        }
    }

    /// Overrides the ring length.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Arms the TTFT-over-SLO trigger.
    pub fn with_ttft_slo_trigger(mut self, slo: SimDuration) -> Self {
        self.ttft_slo_trigger = Some(slo);
        self
    }

    /// Arms the wasted-warm trigger.
    pub fn with_wasted_warm_trigger(mut self) -> Self {
        self.wasted_warm_trigger = true;
        self
    }

    /// Arms the retry-storm trigger: `count` retries inside `window`.
    pub fn with_retry_storm_trigger(mut self, count: u32, window: SimDuration) -> Self {
        self.retry_storm_trigger = Some((count, window));
        self
    }

    /// Arms the shed-while-idle-capacity trigger.
    pub fn with_shed_idle_trigger(mut self) -> Self {
        self.shed_idle_trigger = true;
        self
    }

    /// Arms the replica-colocated-with-primary trigger.
    pub fn with_colocated_replica_trigger(mut self) -> Self {
        self.colocated_replica_trigger = true;
        self
    }
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_arm_triggers() {
        let s = TraceSpec::new();
        assert!(s.ttft_slo_trigger.is_none() && !s.wasted_warm_trigger);
        assert!(s.retry_storm_trigger.is_none() && !s.shed_idle_trigger);
        assert!(!s.colocated_replica_trigger);
        let s = s
            .with_flight_capacity(16)
            .with_ttft_slo_trigger(SimDuration::from_secs(1))
            .with_wasted_warm_trigger()
            .with_retry_storm_trigger(5, SimDuration::from_secs(2))
            .with_shed_idle_trigger()
            .with_colocated_replica_trigger();
        assert!(s.colocated_replica_trigger);
        assert_eq!(s.flight_capacity, 16);
        assert_eq!(s.ttft_slo_trigger, Some(SimDuration::from_secs(1)));
        assert!(s.wasted_warm_trigger);
        assert_eq!(s.retry_storm_trigger, Some((5, SimDuration::from_secs(2))));
        assert!(s.shed_idle_trigger);
    }
}
