//! The flight recorder: a bounded ring over the trace stream that dumps
//! the last N decisions when an anomaly predicate fires.
//!
//! The recorder is a post-hoc scan over the merged [`TraceLog`] rather
//! than an in-loop observer: the stream is already deterministic and
//! complete, so scanning after the run keeps every anomaly predicate off
//! the simulation hot path and lets new predicates run over old traces.

use crate::event::{Lane, TaggedEvent, TraceEvent, TraceLog};
use chameleon_simcore::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

/// A stateful anomaly detector fed the stream one event at a time.
pub trait AnomalyPredicate {
    /// Stable name, used in dump headers.
    fn name(&self) -> &'static str;

    /// Observes one event; returns a human-readable reason when the event
    /// trips the anomaly (the dump covers the ring *up to and including*
    /// this event).
    fn observe(&mut self, ev: &TaggedEvent) -> Option<String>;
}

/// Fires when a request's time-to-first-token exceeds the SLO.
#[derive(Debug, Clone)]
pub struct TtftSloPredicate {
    slo: SimDuration,
}

impl TtftSloPredicate {
    /// Arms the predicate with the run's TTFT SLO.
    pub fn new(slo: SimDuration) -> Self {
        TtftSloPredicate { slo }
    }
}

impl AnomalyPredicate for TtftSloPredicate {
    fn name(&self) -> &'static str {
        "ttft-over-slo"
    }

    fn observe(&mut self, ev: &TaggedEvent) -> Option<String> {
        if let TraceEvent::FirstToken { req, ttft } = ev.event {
            if ttft > self.slo {
                return Some(format!(
                    "req {req}: ttft {:.1}ms over slo {:.1}ms",
                    ttft.as_millis_f64(),
                    self.slo.as_millis_f64()
                ));
            }
        }
        None
    }
}

/// Fires when an adapter that was speculatively pre-warmed onto an engine
/// is evicted from that engine's cache *before* any routed request hit
/// the warm replica — the wasted-warm sequence the predictive
/// control-plane follow-on needs to see.
#[derive(Debug, Clone, Default)]
pub struct WastedWarmPredicate {
    outstanding: HashMap<u32, u32>,
}

impl WastedWarmPredicate {
    /// Creates the predicate with no outstanding warms.
    pub fn new() -> Self {
        WastedWarmPredicate::default()
    }
}

impl AnomalyPredicate for WastedWarmPredicate {
    fn name(&self) -> &'static str {
        "prewarm-evicted-unused"
    }

    fn observe(&mut self, ev: &TaggedEvent) -> Option<String> {
        match &ev.event {
            TraceEvent::PrewarmIssued {
                adapter, target, ..
            } => {
                self.outstanding.insert(*adapter, *target);
            }
            TraceEvent::PrewarmHit { adapter, .. } => {
                self.outstanding.remove(adapter);
            }
            TraceEvent::CacheEvict { adapter, .. } => {
                if let Lane::Engine(engine) = ev.lane {
                    if self.outstanding.get(adapter) == Some(&engine) {
                        self.outstanding.remove(adapter);
                        return Some(format!(
                            "adapter {adapter}: pre-warmed replica on engine {engine} \
                             evicted before first use"
                        ));
                    }
                }
            }
            _ => {}
        }
        None
    }
}

/// Fires when re-dispatch retries cluster into a storm: at least `count`
/// [`TraceEvent::RequestRetried`] events inside any sliding `window` of
/// simulated time. A single crash produces a bounded burst of retries; a
/// storm means backoff is not spreading them, or the fleet keeps losing
/// the same work.
#[derive(Debug, Clone)]
pub struct RetryStormPredicate {
    count: u32,
    window: SimDuration,
    recent: VecDeque<SimTime>,
}

impl RetryStormPredicate {
    /// Arms the predicate: `count` retries inside `window`.
    ///
    /// # Panics
    ///
    /// Panics on a zero count (it would fire on every event).
    pub fn new(count: u32, window: SimDuration) -> Self {
        assert!(count > 0, "retry storm needs a positive count");
        RetryStormPredicate {
            count,
            window,
            recent: VecDeque::new(),
        }
    }
}

impl AnomalyPredicate for RetryStormPredicate {
    fn name(&self) -> &'static str {
        "retry-storm"
    }

    fn observe(&mut self, ev: &TaggedEvent) -> Option<String> {
        if !matches!(ev.event, TraceEvent::RequestRetried { .. }) {
            return None;
        }
        while let Some(&front) = self.recent.front() {
            if ev.at.saturating_since(front) > self.window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        self.recent.push_back(ev.at);
        if self.recent.len() >= self.count as usize {
            let n = self.recent.len();
            // Reset so one storm fires once, not once per further retry.
            self.recent.clear();
            return Some(format!(
                "{n} retries within {:.1}ms (threshold {})",
                self.window.as_millis_f64(),
                self.count
            ));
        }
        None
    }
}

/// Fires when SLO-aware shedding refused a request while at least one
/// active engine sat idle — shedding under pressure is working as
/// designed; shedding beside idle capacity means the fleet-wide TTFT
/// estimate and reality disagree.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShedIdlePredicate;

impl ShedIdlePredicate {
    /// Creates the predicate.
    pub fn new() -> Self {
        ShedIdlePredicate
    }
}

impl AnomalyPredicate for ShedIdlePredicate {
    fn name(&self) -> &'static str {
        "shed-while-idle-capacity"
    }

    fn observe(&mut self, ev: &TaggedEvent) -> Option<String> {
        if let TraceEvent::RequestShed {
            req,
            est_ttft,
            idle_engines,
        } = ev.event
        {
            if idle_engines > 0 {
                return Some(format!(
                    "req {req} shed (est ttft {:.1}ms) with {idle_engines} idle engine(s)",
                    est_ttft.as_millis_f64()
                ));
            }
        }
        None
    }
}

/// Fires when the predictive control plane places a pre-replicated warm
/// *inside the primary's fault domain* while another domain has capacity
/// — the replica and the primary can then be taken out by one correlated
/// failure, which defeats the availability purpose of replicating at all.
/// Built from the fleet topology (`engine id → rack`); engines absent
/// from the map are singleton domains and never co-located.
#[derive(Debug, Clone, Default)]
pub struct ReplicaColocatedPredicate {
    racks: HashMap<u32, u32>,
}

impl ReplicaColocatedPredicate {
    /// Arms the predicate with the fleet's `engine id → rack` map.
    pub fn new(racks: HashMap<u32, u32>) -> Self {
        ReplicaColocatedPredicate { racks }
    }

    /// True when the topology spans more than one rack — i.e. another
    /// domain existed that the replica could have landed in.
    fn another_domain_exists(&self) -> bool {
        let mut racks = self.racks.values();
        match racks.next() {
            None => false,
            Some(first) => racks.any(|r| r != first),
        }
    }
}

impl AnomalyPredicate for ReplicaColocatedPredicate {
    fn name(&self) -> &'static str {
        "replica-colocated-with-primary"
    }

    fn observe(&mut self, ev: &TaggedEvent) -> Option<String> {
        if let TraceEvent::PrewarmIssued {
            adapter,
            target,
            home,
            ..
        } = ev.event
        {
            let (Some(&target_rack), Some(&home_rack)) =
                (self.racks.get(&target), self.racks.get(&home))
            else {
                return None;
            };
            if target_rack == home_rack && self.another_domain_exists() {
                return Some(format!(
                    "adapter {adapter}: warm replica on engine {target} shares rack \
                     {home_rack} with primary engine {home} while another domain had capacity"
                ));
            }
        }
        None
    }
}

/// One flight-recorder firing: the reason and the ring contents (the last
/// `capacity` decisions up to and including the trigger).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Name of the predicate that fired.
    pub predicate: &'static str,
    /// Human-readable firing reason.
    pub reason: String,
    /// Instant of the triggering event.
    pub at: SimTime,
    /// The ring: the last decisions before (and including) the trigger.
    pub events: Vec<TaggedEvent>,
}

impl FlightDump {
    /// Serialises the dump as JSONL: one header line, then the ring.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        let _ = writeln!(
            out,
            "{{\"flight_dump\":\"{}\",\"at\":{},\"reason\":\"{}\",\"events\":{}}}",
            self.predicate,
            self.at.as_nanos(),
            escape_json(&self.reason),
            self.events.len()
        );
        for ev in &self.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The bounded-ring flight recorder.
#[derive(Debug, Clone, Copy)]
pub struct FlightRecorder {
    capacity: usize,
    max_dumps: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` decisions, dumping at most
    /// `max_dumps` times per scan (later firings still count, but a
    /// pathological run must not clone the ring thousands of times).
    pub fn new(capacity: usize, max_dumps: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs a non-empty ring");
        FlightRecorder {
            capacity,
            max_dumps,
        }
    }

    /// Replays `log` through `predicates`, collecting a dump per firing
    /// (up to `max_dumps`). Returns `(dumps, total_firings)`.
    pub fn scan(
        &self,
        log: &TraceLog,
        predicates: &mut [Box<dyn AnomalyPredicate>],
    ) -> (Vec<FlightDump>, u64) {
        let mut ring: VecDeque<&TaggedEvent> = VecDeque::with_capacity(self.capacity);
        let mut dumps = Vec::new();
        let mut firings = 0u64;
        for ev in log.events() {
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(ev);
            for p in predicates.iter_mut() {
                if let Some(reason) = p.observe(ev) {
                    firings += 1;
                    if dumps.len() < self.max_dumps {
                        dumps.push(FlightDump {
                            predicate: p.name(),
                            reason,
                            at: ev.at,
                            events: ring.iter().map(|e| (*e).clone()).collect(),
                        });
                    }
                }
            }
        }
        (dumps, firings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuffer;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn burst_log() -> TraceLog {
        let mut buf = TraceBuffer::new();
        buf.push(
            t(10),
            Lane::Coordinator,
            TraceEvent::PrewarmIssued {
                adapter: 5,
                target: 2,
                home: 0,
                bytes: 4096,
            },
        );
        // A decoy eviction on a *different* engine must not fire.
        buf.push(
            t(20),
            Lane::Engine(1),
            TraceEvent::CacheEvict {
                adapter: 5,
                bytes: 4096,
                frequency: 1,
                last_used: t(15),
            },
        );
        buf.push(
            t(30),
            Lane::Engine(2),
            TraceEvent::CacheEvict {
                adapter: 5,
                bytes: 4096,
                frequency: 0,
                last_used: t(10),
            },
        );
        buf.finish()
    }

    #[test]
    fn wasted_warm_fires_only_on_the_warmed_engine() {
        let rec = FlightRecorder::new(8, 4);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> = vec![Box::new(WastedWarmPredicate::new())];
        let (dumps, firings) = rec.scan(&burst_log(), &mut preds);
        assert_eq!(firings, 1);
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.predicate, "prewarm-evicted-unused");
        assert_eq!(d.at, t(30));
        // The ring covers the whole causal sequence: issue, decoy, evict.
        assert_eq!(d.events.len(), 3);
        assert!(matches!(
            d.events[0].event,
            TraceEvent::PrewarmIssued { adapter: 5, .. }
        ));
        assert!(d
            .to_jsonl()
            .starts_with("{\"flight_dump\":\"prewarm-evicted-unused\""));
    }

    #[test]
    fn prewarm_hit_disarms_the_predicate() {
        let mut buf = TraceBuffer::new();
        buf.push(
            t(10),
            Lane::Coordinator,
            TraceEvent::PrewarmIssued {
                adapter: 5,
                target: 2,
                home: 0,
                bytes: 4096,
            },
        );
        buf.push(
            t(20),
            Lane::Coordinator,
            TraceEvent::PrewarmHit {
                adapter: 5,
                engine: 2,
            },
        );
        buf.push(
            t(30),
            Lane::Engine(2),
            TraceEvent::CacheEvict {
                adapter: 5,
                bytes: 4096,
                frequency: 3,
                last_used: t(25),
            },
        );
        let rec = FlightRecorder::new(8, 4);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> = vec![Box::new(WastedWarmPredicate::new())];
        let (dumps, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!((dumps.len(), firings), (0, 0), "a used warm is not wasted");
    }

    #[test]
    fn ttft_predicate_and_ring_bound() {
        let mut buf = TraceBuffer::new();
        for i in 0..100 {
            buf.push(
                t(i * 10),
                Lane::Engine(0),
                TraceEvent::QueueSample {
                    queued: i as u32,
                    running: 0,
                    kv_bytes: 0,
                    cache_bytes: 0,
                },
            );
        }
        buf.push(
            t(2_000_000_000),
            Lane::Engine(0),
            TraceEvent::FirstToken {
                req: 9,
                ttft: SimDuration::from_secs(2),
            },
        );
        let rec = FlightRecorder::new(16, 4);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> =
            vec![Box::new(TtftSloPredicate::new(SimDuration::from_secs(1)))];
        let (dumps, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!(firings, 1);
        assert_eq!(dumps[0].events.len(), 16, "ring is bounded");
        assert!(matches!(
            dumps[0].events.last().unwrap().event,
            TraceEvent::FirstToken { req: 9, .. }
        ));
        assert!(dumps[0].reason.contains("over slo"));
    }

    #[test]
    fn retry_storm_needs_count_within_window() {
        let mut buf = TraceBuffer::new();
        // Three retries spread over 3s: never 3 inside a 1s window.
        for i in 0..3u64 {
            buf.push(
                t(i * 1_500_000_000),
                Lane::Coordinator,
                TraceEvent::RequestRetried {
                    req: i,
                    attempt: 1,
                    target: 0,
                },
            );
        }
        // Then a genuine storm: 3 retries inside 200ms.
        for i in 0..3u64 {
            buf.push(
                t(10_000_000_000 + i * 100_000_000),
                Lane::Coordinator,
                TraceEvent::RequestRetried {
                    req: 100 + i,
                    attempt: 2,
                    target: 1,
                },
            );
        }
        let rec = FlightRecorder::new(8, 4);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> = vec![Box::new(RetryStormPredicate::new(
            3,
            SimDuration::from_secs(1),
        ))];
        let (dumps, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!(firings, 1, "spread-out retries are not a storm");
        assert_eq!(dumps[0].predicate, "retry-storm");
        assert_eq!(dumps[0].at, t(10_200_000_000));
        assert!(dumps[0].reason.contains("3 retries"));
    }

    #[test]
    fn shed_idle_fires_only_with_idle_capacity() {
        let mut buf = TraceBuffer::new();
        buf.push(
            t(10),
            Lane::Coordinator,
            TraceEvent::RequestShed {
                req: 1,
                est_ttft: SimDuration::from_secs(4),
                idle_engines: 0,
            },
        );
        buf.push(
            t(20),
            Lane::Coordinator,
            TraceEvent::RequestShed {
                req: 2,
                est_ttft: SimDuration::from_secs(4),
                idle_engines: 2,
            },
        );
        let rec = FlightRecorder::new(8, 4);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> = vec![Box::new(ShedIdlePredicate::new())];
        let (dumps, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!(firings, 1, "shedding under real pressure is by design");
        assert_eq!(dumps[0].predicate, "shed-while-idle-capacity");
        assert!(dumps[0].reason.contains("2 idle engine(s)"));
    }

    #[test]
    fn colocated_replica_fires_only_in_the_primary_rack_with_alternatives() {
        let racks: HashMap<u32, u32> = [(0, 0), (1, 0), (2, 1), (3, 1)].into_iter().collect();
        let issue = |target: u32, home: u32| TraceEvent::PrewarmIssued {
            adapter: 7,
            target,
            home,
            bytes: 4096,
        };
        let mut buf = TraceBuffer::new();
        buf.push(t(10), Lane::Coordinator, issue(2, 0)); // cross-rack: fine
        buf.push(t(20), Lane::Coordinator, issue(1, 0)); // same rack: anomaly
        buf.push(t(30), Lane::Coordinator, issue(9, 0)); // unknown engine: singleton
        let rec = FlightRecorder::new(8, 4);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> =
            vec![Box::new(ReplicaColocatedPredicate::new(racks))];
        let (dumps, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!(firings, 1);
        assert_eq!(dumps[0].predicate, "replica-colocated-with-primary");
        assert_eq!(dumps[0].at, t(20));
        assert!(dumps[0].reason.contains("shares rack 0"));

        // Single-domain fleet: nowhere else to go, never an anomaly.
        let one_rack: HashMap<u32, u32> = [(0, 3), (1, 3)].into_iter().collect();
        let mut buf = TraceBuffer::new();
        buf.push(t(10), Lane::Coordinator, issue(1, 0));
        let mut preds: Vec<Box<dyn AnomalyPredicate>> =
            vec![Box::new(ReplicaColocatedPredicate::new(one_rack))];
        let (_, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!(firings, 0, "single-domain colocations are unavoidable");
    }

    #[test]
    fn max_dumps_caps_copies_not_counting() {
        let mut buf = TraceBuffer::new();
        for i in 0..10 {
            buf.push(
                t(i),
                Lane::Engine(0),
                TraceEvent::FirstToken {
                    req: i,
                    ttft: SimDuration::from_secs(5),
                },
            );
        }
        let rec = FlightRecorder::new(4, 3);
        let mut preds: Vec<Box<dyn AnomalyPredicate>> =
            vec![Box::new(TtftSloPredicate::new(SimDuration::from_secs(1)))];
        let (dumps, firings) = rec.scan(&buf.finish(), &mut preds);
        assert_eq!(dumps.len(), 3);
        assert_eq!(firings, 10);
    }
}
