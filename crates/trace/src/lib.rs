//! Decision tracing, flight recording, and barrier profiling — the
//! simulator's instrument panel.
//!
//! Every layer of the stack (router, cache, scheduler, autoscaler,
//! cluster coordinator) makes decisions that end-of-run aggregates erase:
//! *which* engine a request was routed to and who the candidates were,
//! *which* eviction pushed a pre-warmed adapter out before its burst
//! landed, *when* the autoscaler fired and on what signal. This crate
//! captures those decisions as a typed, deterministic event stream:
//!
//! * [`TraceEvent`] — the typed decision vocabulary. Every variant
//!   carries the inputs of the decision (candidate sets, compound-score
//!   components, trigger signals), not just the outcome.
//! * [`Lane`] / [`TaggedEvent`] / [`TraceBuffer`] — the determinism
//!   machinery. Events are buffered per *lane* (the coordinator, or one
//!   engine) in each lane's own execution order, then merged into a
//!   single stream under the pinned total order `(time, lane, seq)` —
//!   the same tie-break discipline the cluster's dispatch loop uses, so
//!   serial and parallel runs of the same scenario emit **byte-identical**
//!   streams.
//! * [`TraceLog`] — the merged stream, serialisable as JSONL (hand-rolled;
//!   the workspace's `serde` is an offline no-op stub).
//! * [`FlightRecorder`] — a bounded ring over the stream that dumps the
//!   last N decisions when an [`AnomalyPredicate`] fires (TTFT over SLO,
//!   a pre-warmed adapter evicted before use, or anything custom).
//! * [`BarrierProfile`] — wall-clock breakdown of a cluster run into
//!   coordinator dispatch, worker stepping, and barrier wait. Wall-clock
//!   numbers are host-dependent by nature, so they live **outside** the
//!   deterministic event stream.
//! * [`TraceSpec`] — the plain-data configuration carried by
//!   `SystemConfig`: tracing is a strict opt-in overlay, and with it
//!   disabled every run is byte-for-byte what it was before this crate
//!   existed.

pub mod event;
pub mod profile;
pub mod recorder;
pub mod spec;

pub use event::{AutoscaleAction, Lane, TaggedEvent, TraceBuffer, TraceEvent, TraceLog};
pub use profile::BarrierProfile;
pub use recorder::{
    AnomalyPredicate, FlightDump, FlightRecorder, ReplicaColocatedPredicate, RetryStormPredicate,
    ShedIdlePredicate, TtftSloPredicate, WastedWarmPredicate,
};
pub use spec::TraceSpec;
