//! The typed decision vocabulary and the deterministic merge machinery.
//!
//! Identities are carried as raw integers (`u32` adapter/engine ids,
//! `u64` request ids) so this crate sits below every subsystem crate and
//! none of them grow a cyclic dependency to be observable.

use chameleon_simcore::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Who emitted an event: the cluster coordinator (routing, autoscaling,
/// predictive warms, barriers) or one engine (cache, batching, tokens).
///
/// Lanes are the unit of ordering: within a lane events are appended in
/// that lane's own execution order, which is identical between serial and
/// parallel cluster execution because engine stepping is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The cluster coordinator (or the driver of a single-engine run).
    Coordinator,
    /// One engine, by stable [`EngineId`](https://docs.rs/chameleon-router) value.
    Engine(u32),
}

impl Lane {
    /// Total-order rank: the coordinator sorts before any engine at the
    /// same instant (it acts at the barrier the engines step *to*), and
    /// engines sort by stable identity.
    pub fn rank(self) -> u64 {
        match self {
            Lane::Coordinator => 0,
            Lane::Engine(e) => u64::from(e) + 1,
        }
    }
}

/// The autoscaler action recorded by [`TraceEvent::AutoscaleTrigger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscaleAction {
    /// Grow the fleet by one engine.
    ScaleUp,
    /// Drain (and eventually retire) the engine with this id.
    Drain(u32),
}

/// One decision, with the inputs that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The global dispatcher placed a request: the candidate set it saw
    /// (engine id, outstanding tokens), the engine it chose, and whether
    /// the placement was an affinity spill / residency hit.
    RouteDecision {
        /// Request id.
        req: u64,
        /// The request's adapter.
        adapter: u32,
        /// Chosen engine id.
        chosen: u32,
        /// The placement was diverted off the adapter's home engine.
        spilled: bool,
        /// The chosen engine already had the adapter resident.
        affinity_hit: bool,
        /// The live candidate engines at decision time, as
        /// `(engine_id, outstanding_tokens)` in snapshot order.
        candidates: Vec<(u32, u64)>,
    },
    /// The adapter cache admitted an adapter.
    CacheAdmit {
        /// Adapter id.
        adapter: u32,
        /// Weight bytes admitted.
        bytes: u64,
        /// References handed out at admission (waiting requests).
        refs: u32,
    },
    /// The adapter cache evicted an adapter, with the compound-score
    /// inputs (§4.2: frequency, recency, size) it was judged on.
    CacheEvict {
        /// Adapter id.
        adapter: u32,
        /// Weight bytes released.
        bytes: u64,
        /// Access-frequency counter at eviction.
        frequency: u32,
        /// Last-use instant at eviction.
        last_used: SimTime,
    },
    /// The local scheduler formed a batch (only emitted when at least one
    /// request was admitted).
    BatchFormed {
        /// Requests admitted this iteration boundary.
        admitted: u32,
        /// Running batch size after admission.
        running: u32,
        /// Requests still queued after admission.
        queued: u32,
    },
    /// A request produced its first output token.
    FirstToken {
        /// Request id.
        req: u64,
        /// Time to first token.
        ttft: SimDuration,
    },
    /// Periodic per-engine load sample (rides the memory-sample clock).
    QueueSample {
        /// Requests waiting in the local queue.
        queued: u32,
        /// Requests in the running batch.
        running: u32,
        /// KV-cache bytes in use.
        kv_bytes: u64,
        /// Adapter-cache bytes held.
        cache_bytes: u64,
    },
    /// The autoscaler decided to act, and on which signal.
    AutoscaleTrigger {
        /// What it decided.
        action: AutoscaleAction,
        /// The signal that fired: `"queue-depth"`, `"slo-estimate"` or
        /// `"forecast"`.
        trigger: &'static str,
    },
    /// The predictive control plane issued a speculative warm transfer.
    PrewarmIssued {
        /// Adapter id.
        adapter: u32,
        /// Target engine (the adapter's spill fallback).
        target: u32,
        /// The adapter's home (primary) engine at issue time — lets the
        /// flight recorder check the warm landed outside the primary's
        /// fault domain.
        home: u32,
        /// Bytes in flight.
        bytes: u64,
    },
    /// A routed request landed on an engine its adapter was pre-warmed to.
    PrewarmHit {
        /// Adapter id.
        adapter: u32,
        /// Engine that served the warm replica.
        engine: u32,
    },
    /// The autoscaler started draining an engine.
    DrainStarted {
        /// The draining engine.
        engine: u32,
    },
    /// Drain-time shard handoff: the departing engine's resident adapters
    /// were pushed to the survivors' caches.
    Handoff {
        /// The departing engine.
        from: u32,
        /// Adapters re-homed.
        adapters: u32,
        /// Total bytes transferred.
        bytes: u64,
    },
    /// The failure detector declared an engine dead, with the backlog it
    /// was holding at the time.
    EngineFailed {
        /// The dead engine.
        engine: u32,
        /// Requests still waiting in its scheduler queues.
        queued: u32,
        /// Requests in its running batch.
        running: u32,
    },
    /// A request extracted from a dead engine was re-dispatched.
    RequestRetried {
        /// Request id.
        req: u64,
        /// Retry attempt number (1 = first re-dispatch).
        attempt: u32,
        /// Engine the router chose this time.
        target: u32,
    },
    /// SLO-aware shedding refused admission.
    RequestShed {
        /// Request id.
        req: u64,
        /// The fleet's best estimated TTFT at refusal, in nanoseconds.
        est_ttft: SimDuration,
        /// Active engines that were idle at refusal (shedding while
        /// capacity idles is the anomaly the flight recorder watches for).
        idle_engines: u32,
    },
    /// A correlated injection crashed a whole fault domain (rack).
    DomainFailed {
        /// The rack that failed.
        rack: u32,
        /// Engines the domain crash took down.
        engines: u32,
    },
    /// A coordinator↔domain partition healed; the rack's engines rejoined
    /// the reachable fleet.
    PartitionHealed {
        /// The rack that rejoined.
        rack: u32,
    },
    /// A dead engine's shard was re-homed onto survivors with cold/warm
    /// reloads.
    ShardRecovered {
        /// The dead engine whose shard moved.
        from: u32,
        /// Adapters re-homed.
        adapters: u32,
        /// Total bytes re-loaded.
        bytes: u64,
    },
    /// A coordinator barrier opened: engines are about to step to
    /// `boundary` (`None` = final drain to completion).
    BarrierOpen {
        /// Monotonic epoch counter.
        epoch: u64,
        /// The exclusive time boundary engines step to.
        boundary: Option<SimTime>,
        /// Engines with pending work at the barrier.
        pending: u32,
    },
    /// The matching barrier closed, with per-engine step counts for the
    /// epoch (the load-balance view of the worker pool).
    BarrierClose {
        /// Monotonic epoch counter.
        epoch: u64,
        /// `(engine_id, events_stepped)` for engines that did work.
        stepped: Vec<(u32, u64)>,
    },
    /// Amortised dispatch coalesced consecutive arrivals into one barrier
    /// (only emitted when batched dispatch is enabled).
    DispatchBatch {
        /// Snapshot generation the batch routed from.
        generation: u64,
        /// Arrivals routed (or shed) in the batch.
        size: u32,
        /// Trace time between the first and last member.
        span: SimDuration,
    },
    /// A fault barrier re-dispatched due retries as one batch from a
    /// single snapshot generation (only emitted when batched dispatch is
    /// enabled).
    RetryBatch {
        /// Snapshot generation the retries routed from.
        generation: u64,
        /// Retries dispatched at this barrier.
        size: u32,
        /// The generation was inherited from an arrival batch at the same
        /// instant instead of refreshing the snapshots.
        reused: bool,
    },
    /// KV-aware admission control refused an admission whose block-rounded
    /// KV footprint could not complete (only emitted when the KV plane is
    /// armed).
    AdmissionRefused {
        /// Request id.
        req: u64,
        /// Block-rounded KV bytes the admission needed.
        need_bytes: u64,
        /// Free + reclaimable bytes at refusal.
        free_bytes: u64,
        /// Wait the release schedule predicts until the deficit frees.
        est_wait: SimDuration,
    },
    /// A running request's full KV was demoted to a compact hidden-state
    /// proxy entry under pressure (hybrid cache mode).
    KvDemoted {
        /// Request id.
        req: u64,
        /// Full block-granular bytes released.
        full_bytes: u64,
        /// Proxy bytes left resident.
        proxy_bytes: u64,
    },
    /// A demoted request was restored to full KV residency over PCIe.
    KvRestored {
        /// Request id.
        req: u64,
        /// Full bytes re-reserved.
        kv_bytes: u64,
        /// Time the request spent demoted.
        stalled: SimDuration,
    },
}

impl TraceEvent {
    /// Short stable kind tag used in the JSONL `"ev"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RouteDecision { .. } => "route",
            TraceEvent::CacheAdmit { .. } => "cache_admit",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::BatchFormed { .. } => "batch",
            TraceEvent::FirstToken { .. } => "first_token",
            TraceEvent::QueueSample { .. } => "queue",
            TraceEvent::AutoscaleTrigger { .. } => "autoscale",
            TraceEvent::PrewarmIssued { .. } => "prewarm_issued",
            TraceEvent::PrewarmHit { .. } => "prewarm_hit",
            TraceEvent::DrainStarted { .. } => "drain",
            TraceEvent::Handoff { .. } => "handoff",
            TraceEvent::EngineFailed { .. } => "engine_failed",
            TraceEvent::RequestRetried { .. } => "retry",
            TraceEvent::RequestShed { .. } => "shed",
            TraceEvent::DomainFailed { .. } => "domain_failed",
            TraceEvent::PartitionHealed { .. } => "partition_healed",
            TraceEvent::ShardRecovered { .. } => "shard_recovered",
            TraceEvent::BarrierOpen { .. } => "barrier_open",
            TraceEvent::BarrierClose { .. } => "barrier_close",
            TraceEvent::DispatchBatch { .. } => "dispatch_batch",
            TraceEvent::RetryBatch { .. } => "retry_batch",
            TraceEvent::AdmissionRefused { .. } => "admission_refused",
            TraceEvent::KvDemoted { .. } => "kv_demoted",
            TraceEvent::KvRestored { .. } => "kv_restored",
        }
    }
}

/// One event in the merged stream: instant, emitting lane, per-lane
/// sequence number, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedEvent {
    /// Simulated instant of the decision.
    pub at: SimTime,
    /// Emitting lane.
    pub lane: Lane,
    /// Per-lane sequence number (append order within the lane).
    pub seq: u64,
    /// The decision.
    pub event: TraceEvent,
}

impl TaggedEvent {
    /// The pinned total-order key: time, then lane rank (coordinator
    /// first), then per-lane append order. Unique per event, so the
    /// merged order is independent of merge-input order.
    pub fn sort_key(&self) -> (SimTime, u64, u64) {
        (self.at, self.lane.rank(), self.seq)
    }

    /// Appends this event as one JSONL line (no trailing newline).
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(out, "{{\"at\":{},", self.at.as_nanos());
        match self.lane {
            Lane::Coordinator => out.push_str("\"lane\":\"coord\","),
            Lane::Engine(e) => {
                let _ = write!(out, "\"lane\":\"e{e}\",");
            }
        }
        let _ = write!(out, "\"seq\":{},\"ev\":\"{}\"", self.seq, self.event.kind());
        match &self.event {
            TraceEvent::RouteDecision {
                req,
                adapter,
                chosen,
                spilled,
                affinity_hit,
                candidates,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{req},\"adapter\":{adapter},\"chosen\":{chosen},\
                     \"spilled\":{spilled},\"affinity_hit\":{affinity_hit},\"candidates\":["
                );
                for (i, (id, load)) in candidates.iter().enumerate() {
                    let comma = if i == 0 { "" } else { "," };
                    let _ = write!(out, "{comma}[{id},{load}]");
                }
                out.push(']');
            }
            TraceEvent::CacheAdmit {
                adapter,
                bytes,
                refs,
            } => {
                let _ = write!(
                    out,
                    ",\"adapter\":{adapter},\"bytes\":{bytes},\"refs\":{refs}"
                );
            }
            TraceEvent::CacheEvict {
                adapter,
                bytes,
                frequency,
                last_used,
            } => {
                let _ = write!(
                    out,
                    ",\"adapter\":{adapter},\"bytes\":{bytes},\"frequency\":{frequency},\
                     \"last_used\":{}",
                    last_used.as_nanos()
                );
            }
            TraceEvent::BatchFormed {
                admitted,
                running,
                queued,
            } => {
                let _ = write!(
                    out,
                    ",\"admitted\":{admitted},\"running\":{running},\"queued\":{queued}"
                );
            }
            TraceEvent::FirstToken { req, ttft } => {
                let _ = write!(out, ",\"req\":{req},\"ttft\":{}", ttft.as_nanos());
            }
            TraceEvent::QueueSample {
                queued,
                running,
                kv_bytes,
                cache_bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"queued\":{queued},\"running\":{running},\
                     \"kv_bytes\":{kv_bytes},\"cache_bytes\":{cache_bytes}"
                );
            }
            TraceEvent::AutoscaleTrigger { action, trigger } => {
                match action {
                    AutoscaleAction::ScaleUp => out.push_str(",\"action\":\"scale-up\""),
                    AutoscaleAction::Drain(e) => {
                        let _ = write!(out, ",\"action\":\"drain\",\"victim\":{e}");
                    }
                }
                let _ = write!(out, ",\"trigger\":\"{trigger}\"");
            }
            TraceEvent::PrewarmIssued {
                adapter,
                target,
                home,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"adapter\":{adapter},\"target\":{target},\"home\":{home},\"bytes\":{bytes}"
                );
            }
            TraceEvent::PrewarmHit { adapter, engine } => {
                let _ = write!(out, ",\"adapter\":{adapter},\"engine\":{engine}");
            }
            TraceEvent::DrainStarted { engine } => {
                let _ = write!(out, ",\"engine\":{engine}");
            }
            TraceEvent::Handoff {
                from,
                adapters,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"adapters\":{adapters},\"bytes\":{bytes}"
                );
            }
            TraceEvent::EngineFailed {
                engine,
                queued,
                running,
            } => {
                let _ = write!(
                    out,
                    ",\"engine\":{engine},\"queued\":{queued},\"running\":{running}"
                );
            }
            TraceEvent::RequestRetried {
                req,
                attempt,
                target,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{req},\"attempt\":{attempt},\"target\":{target}"
                );
            }
            TraceEvent::RequestShed {
                req,
                est_ttft,
                idle_engines,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{req},\"est_ttft\":{},\"idle_engines\":{idle_engines}",
                    est_ttft.as_nanos()
                );
            }
            TraceEvent::DomainFailed { rack, engines } => {
                let _ = write!(out, ",\"rack\":{rack},\"engines\":{engines}");
            }
            TraceEvent::PartitionHealed { rack } => {
                let _ = write!(out, ",\"rack\":{rack}");
            }
            TraceEvent::ShardRecovered {
                from,
                adapters,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"adapters\":{adapters},\"bytes\":{bytes}"
                );
            }
            TraceEvent::BarrierOpen {
                epoch,
                boundary,
                pending,
            } => {
                let _ = write!(out, ",\"epoch\":{epoch},\"boundary\":");
                match boundary {
                    Some(t) => {
                        let _ = write!(out, "{}", t.as_nanos());
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"pending\":{pending}");
            }
            TraceEvent::BarrierClose { epoch, stepped } => {
                let _ = write!(out, ",\"epoch\":{epoch},\"stepped\":[");
                for (i, (id, n)) in stepped.iter().enumerate() {
                    let comma = if i == 0 { "" } else { "," };
                    let _ = write!(out, "{comma}[{id},{n}]");
                }
                out.push(']');
            }
            TraceEvent::DispatchBatch {
                generation,
                size,
                span,
            } => {
                let _ = write!(
                    out,
                    ",\"generation\":{generation},\"size\":{size},\"span\":{}",
                    span.as_nanos()
                );
            }
            TraceEvent::RetryBatch {
                generation,
                size,
                reused,
            } => {
                let _ = write!(
                    out,
                    ",\"generation\":{generation},\"size\":{size},\"reused\":{reused}"
                );
            }
            TraceEvent::AdmissionRefused {
                req,
                need_bytes,
                free_bytes,
                est_wait,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{req},\"need_bytes\":{need_bytes},\"free_bytes\":{free_bytes},\
                     \"est_wait\":{}",
                    est_wait.as_nanos()
                );
            }
            TraceEvent::KvDemoted {
                req,
                full_bytes,
                proxy_bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{req},\"full_bytes\":{full_bytes},\"proxy_bytes\":{proxy_bytes}"
                );
            }
            TraceEvent::KvRestored {
                req,
                kv_bytes,
                stalled,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{req},\"kv_bytes\":{kv_bytes},\"stalled\":{}",
                    stalled.as_nanos()
                );
            }
        }
        out.push('}');
    }
}

/// Accumulates events lane by lane, assigning per-lane sequence numbers,
/// then merges them under the pinned total order.
///
/// Engines buffer their own events during a run (in their thread-confined
/// stepping), the coordinator pushes directly, and the cluster drains each
/// engine's buffer into its lane at retirement or end of run. Because
/// every lane's contents are independent of execution mode, the merged
/// stream is byte-identical between serial and parallel runs.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Vec<TaggedEvent>,
    seqs: HashMap<u64, u64>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Appends one event to `lane`, assigning the lane's next sequence
    /// number.
    pub fn push(&mut self, at: SimTime, lane: Lane, event: TraceEvent) {
        let seq = self.seqs.entry(lane.rank()).or_insert(0);
        self.events.push(TaggedEvent {
            at,
            lane,
            seq: *seq,
            event,
        });
        *seq += 1;
    }

    /// Appends a batch of `(at, event)` pairs to `lane` in order. Batches
    /// for one lane must arrive in that lane's execution order (they do:
    /// an engine's buffer is drained chronologically).
    pub fn extend_lane<I>(&mut self, lane: Lane, batch: I)
    where
        I: IntoIterator<Item = (SimTime, TraceEvent)>,
    {
        for (at, event) in batch {
            self.push(at, lane, event);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges into the final stream: sort by the pinned `(time, lane,
    /// seq)` key, which is unique per event, so the result is independent
    /// of the order lanes were drained in.
    pub fn finish(mut self) -> TraceLog {
        self.events.sort_by_key(TaggedEvent::sort_key);
        TraceLog {
            events: self.events,
        }
    }
}

/// The merged, deterministically ordered event stream of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    events: Vec<TaggedEvent>,
}

impl TraceLog {
    /// The merged events, in pinned order.
    pub fn events(&self) -> &[TaggedEvent] {
        &self.events
    }

    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True for an empty stream.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises the stream as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for ev in &self.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample(q: u32) -> TraceEvent {
        TraceEvent::QueueSample {
            queued: q,
            running: 0,
            kv_bytes: 0,
            cache_bytes: 0,
        }
    }

    #[test]
    fn merge_is_drain_order_independent() {
        let engine_batch = vec![(t(5), sample(1)), (t(10), sample(2))];
        let coord = [
            (t(5), TraceEvent::DrainStarted { engine: 7 }),
            (t(10), TraceEvent::DrainStarted { engine: 8 }),
        ];

        let mut a = TraceBuffer::new();
        for (at, ev) in coord.iter().cloned() {
            a.push(at, Lane::Coordinator, ev);
        }
        a.extend_lane(Lane::Engine(0), engine_batch.clone());

        let mut b = TraceBuffer::new();
        b.extend_lane(Lane::Engine(0), engine_batch);
        for (at, ev) in coord.iter().cloned() {
            b.push(at, Lane::Coordinator, ev);
        }

        let (a, b) = (a.finish(), b.finish());
        assert_eq!(a, b, "merge must not depend on drain order");
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        // Coordinator sorts before the engine at equal instants.
        assert_eq!(a.events()[0].lane, Lane::Coordinator);
        assert_eq!(a.events()[1].lane, Lane::Engine(0));
    }

    #[test]
    fn per_lane_seq_preserves_append_order_at_equal_times() {
        let mut buf = TraceBuffer::new();
        buf.push(t(3), Lane::Coordinator, sample(1));
        buf.push(t(3), Lane::Coordinator, sample(2));
        let log = buf.finish();
        assert_eq!(log.events()[0].seq, 0);
        assert_eq!(log.events()[1].seq, 1);
        match (&log.events()[0].event, &log.events()[1].event) {
            (
                TraceEvent::QueueSample { queued: a, .. },
                TraceEvent::QueueSample { queued: b, .. },
            ) => {
                assert_eq!((*a, *b), (1, 2));
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn kv_events_jsonl_shape() {
        let mut buf = TraceBuffer::new();
        buf.push(
            t(1_000),
            Lane::Engine(0),
            TraceEvent::AdmissionRefused {
                req: 5,
                need_bytes: 4096,
                free_bytes: 1024,
                est_wait: SimDuration::from_nanos(500),
            },
        );
        buf.push(
            t(2_000),
            Lane::Engine(0),
            TraceEvent::KvDemoted {
                req: 6,
                full_bytes: 8192,
                proxy_bytes: 1024,
            },
        );
        buf.push(
            t(3_000),
            Lane::Engine(0),
            TraceEvent::KvRestored {
                req: 6,
                kv_bytes: 8192,
                stalled: SimDuration::from_nanos(1_000),
            },
        );
        let jsonl = buf.finish().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"ev\":\"admission_refused\""));
        assert!(lines[0].contains("\"need_bytes\":4096,\"free_bytes\":1024,\"est_wait\":500"));
        assert!(lines[1].contains("\"ev\":\"kv_demoted\""));
        assert!(lines[1].contains("\"full_bytes\":8192,\"proxy_bytes\":1024"));
        assert!(lines[2].contains("\"ev\":\"kv_restored\""));
        assert!(lines[2].contains("\"kv_bytes\":8192,\"stalled\":1000"));
        for line in lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn jsonl_shape() {
        let mut buf = TraceBuffer::new();
        buf.push(
            t(1_000),
            Lane::Coordinator,
            TraceEvent::RouteDecision {
                req: 42,
                adapter: 7,
                chosen: 2,
                spilled: true,
                affinity_hit: false,
                candidates: vec![(0, 10), (2, 3)],
            },
        );
        buf.push(
            t(2_000),
            Lane::Engine(2),
            TraceEvent::CacheEvict {
                adapter: 7,
                bytes: 1024,
                frequency: 3,
                last_used: t(900),
            },
        );
        buf.push(
            t(3_000),
            Lane::Coordinator,
            TraceEvent::BarrierOpen {
                epoch: 4,
                boundary: None,
                pending: 2,
            },
        );
        buf.push(
            t(4_000),
            Lane::Coordinator,
            TraceEvent::DispatchBatch {
                generation: 9,
                size: 17,
                span: SimDuration::from_nanos(250),
            },
        );
        buf.push(
            t(5_000),
            Lane::Coordinator,
            TraceEvent::RetryBatch {
                generation: 9,
                size: 3,
                reused: true,
            },
        );
        let jsonl = buf.finish().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[3].contains("\"ev\":\"dispatch_batch\""));
        assert!(lines[3].contains("\"generation\":9,\"size\":17,\"span\":250"));
        assert!(lines[4].contains("\"ev\":\"retry_batch\""));
        assert!(lines[4].contains("\"generation\":9,\"size\":3,\"reused\":true"));
        assert_eq!(
            lines[0],
            "{\"at\":1000,\"lane\":\"coord\",\"seq\":0,\"ev\":\"route\",\"req\":42,\
             \"adapter\":7,\"chosen\":2,\"spilled\":true,\"affinity_hit\":false,\
             \"candidates\":[[0,10],[2,3]]}"
        );
        assert!(lines[1].contains("\"ev\":\"cache_evict\""));
        assert!(lines[1].contains("\"last_used\":900"));
        assert!(lines[2].contains("\"boundary\":null"));
        // Every line parses as a flat object by brace balance.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }
}
