//! Prediction components of the Chameleon reproduction.
//!
//! Two predictors appear in the paper:
//!
//! * [`output_len`] — the output-length predictor (§4.1 1): Chameleon uses
//!   "an existing, open-source predictor based on a BERT proxy model" with
//!   ≈80 % measured accuracy, and §5.4 studies sensitivity at 60/80/100 %.
//!   We model it as [`NoisyBucketPredictor`] with an explicit accuracy knob,
//!   which is precisely the axis the paper sweeps.
//! * [`histogram`] — the histogram-based load predictor (§4.2 3, §5.3 4)
//!   borrowed from Serverless-in-the-Wild, used to prefetch adapters for
//!   requests that have not arrived yet.

pub mod histogram;
pub mod output_len;

pub use histogram::{Forecast, HistogramLoadPredictor};
pub use output_len::{
    NoisyBucketPredictor, OraclePredictor, OutputLenPredictor, WorstCasePredictor,
};
