//! Histogram-based adapter-load prediction.
//!
//! §4.2 (3): "we explore techniques that predict future load, such as a
//! histogram-based approach [48], and prefetch adapters even for requests
//! that are not currently queued". Reference [48] is Serverless in the Wild,
//! whose keep-alive policy tracks per-function inter-arrival histograms.
//! [`HistogramLoadPredictor`] applies the same idea per adapter: observe
//! arrival gaps, predict the next use as `last_use + median_gap`, and
//! surface adapters expected within a prefetch window.

use chameleon_models::AdapterId;
use chameleon_simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Per-adapter inter-arrival statistics.
#[derive(Debug, Clone)]
struct AdapterHistory {
    last_seen: SimTime,
    /// Log-scale histogram of inter-arrival gaps (bucket k covers
    /// `[2^k, 2^(k+1))` milliseconds).
    gap_buckets: Vec<u32>,
    observations: u32,
}

const NUM_BUCKETS: usize = 24; // up to ~2^24 ms ≈ 4.6 hours

fn bucket_of(gap: SimDuration) -> usize {
    let ms = gap.as_millis_f64().max(1.0);
    (ms.log2().floor() as usize).min(NUM_BUCKETS - 1)
}

fn bucket_mid(bucket: usize) -> SimDuration {
    SimDuration::from_millis_f64(1.5 * (1u64 << bucket) as f64)
}

impl AdapterHistory {
    fn new(at: SimTime) -> Self {
        AdapterHistory {
            last_seen: at,
            gap_buckets: vec![0; NUM_BUCKETS],
            observations: 0,
        }
    }

    fn observe(&mut self, at: SimTime) {
        if at > self.last_seen {
            let gap = at.saturating_since(self.last_seen);
            self.gap_buckets[bucket_of(gap)] += 1;
            self.observations += 1;
        }
        self.last_seen = self.last_seen.max(at);
    }

    /// Median inter-arrival gap (bucket midpoint).
    fn median_gap(&self) -> Option<SimDuration> {
        if self.observations == 0 {
            return None;
        }
        let target = self.observations.div_ceil(2);
        let mut acc = 0;
        for (k, &c) in self.gap_buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(bucket_mid(k));
            }
        }
        None
    }
}

/// Predicts which adapters will be needed soon, from observed arrivals.
///
/// ```
/// use chameleon_predictor::HistogramLoadPredictor;
/// use chameleon_models::AdapterId;
/// use chameleon_simcore::{SimDuration, SimTime};
///
/// let mut p = HistogramLoadPredictor::new();
/// // Adapter 1 arrives every second.
/// for s in 0..10 {
///     p.observe(AdapterId(1), SimTime::from_secs_f64(s as f64));
/// }
/// let next = p.predict_next_use(AdapterId(1), SimTime::from_secs_f64(10.0)).unwrap();
/// assert!(next <= SimTime::from_secs_f64(12.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistogramLoadPredictor {
    histories: HashMap<AdapterId, AdapterHistory>,
}

impl HistogramLoadPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        HistogramLoadPredictor::default()
    }

    /// Records that a request for `adapter` arrived at `at`.
    pub fn observe(&mut self, adapter: AdapterId, at: SimTime) {
        self.histories
            .entry(adapter)
            .or_insert_with(|| AdapterHistory::new(at))
            .observe(at);
    }

    /// Number of adapters with any history.
    pub fn tracked(&self) -> usize {
        self.histories.len()
    }

    /// Predicts the next use of `adapter`: `max(now, last_seen + median
    /// gap)`. Returns `None` before two observations exist (no gap yet).
    pub fn predict_next_use(&self, adapter: AdapterId, now: SimTime) -> Option<SimTime> {
        let h = self.histories.get(&adapter)?;
        let gap = h.median_gap()?;
        Some((h.last_seen + gap).max(now))
    }

    /// Adapters predicted to be used within `window` from `now`, most
    /// imminent first — the prefetch candidate list.
    pub fn candidates(&self, now: SimTime, window: SimDuration) -> Vec<AdapterId> {
        let deadline = now + window;
        let mut hits: Vec<(SimTime, AdapterId)> = self
            .histories
            .keys()
            .filter_map(|&id| {
                self.predict_next_use(id, now)
                    .filter(|&t| t <= deadline)
                    .map(|t| (t, id))
            })
            .collect();
        hits.sort();
        hits.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn needs_two_observations() {
        let mut p = HistogramLoadPredictor::new();
        assert_eq!(p.predict_next_use(AdapterId(1), t(0.0)), None);
        p.observe(AdapterId(1), t(1.0));
        assert_eq!(p.predict_next_use(AdapterId(1), t(1.0)), None);
        p.observe(AdapterId(1), t(2.0));
        assert!(p.predict_next_use(AdapterId(1), t(2.0)).is_some());
        assert_eq!(p.tracked(), 1);
    }

    #[test]
    fn periodic_adapter_predicted_on_time() {
        let mut p = HistogramLoadPredictor::new();
        for s in 0..20 {
            p.observe(AdapterId(1), t(s as f64));
        }
        let next = p.predict_next_use(AdapterId(1), t(19.0)).unwrap();
        // 1 s gaps land in the [1024 ms, 2048 ms) bucket → midpoint 1.536 s.
        assert!(next > t(19.0) && next <= t(21.0), "predicted {next}");
    }

    #[test]
    fn prediction_never_in_past() {
        let mut p = HistogramLoadPredictor::new();
        p.observe(AdapterId(1), t(0.0));
        p.observe(AdapterId(1), t(1.0));
        let next = p.predict_next_use(AdapterId(1), t(100.0)).unwrap();
        assert!(next >= t(100.0));
    }

    #[test]
    fn candidates_ordered_by_imminence() {
        let mut p = HistogramLoadPredictor::new();
        // Adapter 1: 1 s period, last seen t=10.
        for s in 0..=10 {
            p.observe(AdapterId(1), t(s as f64));
        }
        // Adapter 2: 4 s period, last seen t=8.
        for s in (0..=8).step_by(4) {
            p.observe(AdapterId(2), t(s as f64));
        }
        // Adapter 3: seen once — unpredictable.
        p.observe(AdapterId(3), t(9.0));
        let c = p.candidates(t(10.0), SimDuration::from_secs(30));
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], AdapterId(1), "1s-period adapter is most imminent");
        assert_eq!(c[1], AdapterId(2));
        // Tight window keeps only the most imminent adapter: adapter 1 is
        // predicted at ~10.77 s (768 ms bucket midpoint after last_seen=10),
        // adapter 2 at ~11.07 s (3.07 s midpoint after last_seen=8).
        let tight = p.candidates(t(10.0), SimDuration::from_millis(900));
        assert_eq!(tight, vec![AdapterId(1)]);
    }

    #[test]
    fn bursty_history_uses_median_not_mean() {
        let mut p = HistogramLoadPredictor::new();
        // Nine 100 ms gaps and one 100 s outlier: median stays ~100 ms.
        let mut now = 0.0;
        p.observe(AdapterId(7), t(now));
        for _ in 0..9 {
            now += 0.1;
            p.observe(AdapterId(7), t(now));
        }
        now += 100.0;
        p.observe(AdapterId(7), t(now));
        let next = p.predict_next_use(AdapterId(7), t(now)).unwrap();
        let gap = next.saturating_since(t(now));
        assert!(
            gap < SimDuration::from_secs(1),
            "median-based gap should be small, got {gap}"
        );
    }

    #[test]
    fn duplicate_timestamps_ignored() {
        let mut p = HistogramLoadPredictor::new();
        p.observe(AdapterId(1), t(1.0));
        p.observe(AdapterId(1), t(1.0));
        assert_eq!(p.predict_next_use(AdapterId(1), t(1.0)), None);
    }
}
