//! Histogram-based adapter-load prediction.
//!
//! §4.2 (3): "we explore techniques that predict future load, such as a
//! histogram-based approach [48], and prefetch adapters even for requests
//! that are not currently queued". Reference [48] is Serverless in the Wild,
//! whose keep-alive policy tracks per-function inter-arrival histograms.
//! [`HistogramLoadPredictor`] applies the same idea per adapter: observe
//! arrival gaps, predict the next use as `last_use + median_gap`, and
//! surface adapters expected within a prefetch window.
//!
//! Two consumers drive the API:
//!
//! * the single-engine prefetcher, which only needs the ordered candidate
//!   list ([`HistogramLoadPredictor::candidates`]);
//! * the cluster-level predictive control plane, which also needs *how
//!   hot* each candidate is — [`HistogramLoadPredictor::forecast`]
//!   returns `(adapter, predicted time, estimated rate)` triples so
//!   pre-replication and forecast-driven autoscaling can threshold on the
//!   observed arrival rate, not just imminence.
//!
//! Both orderings are pinned: candidates sort by predicted time with ties
//! broken by ascending [`AdapterId`], so every consumer (and every
//! serial↔parallel bit-identity test built on top) sees one deterministic
//! sequence regardless of hash-map iteration order.

use chameleon_models::AdapterId;
use chameleon_simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Per-adapter inter-arrival statistics.
#[derive(Debug, Clone)]
struct AdapterHistory {
    last_seen: SimTime,
    /// Log-scale histogram of inter-arrival gaps (bucket k covers
    /// `[2^k, 2^(k+1))` milliseconds).
    gap_buckets: Vec<u32>,
    observations: u32,
}

const NUM_BUCKETS: usize = 24; // up to ~2^24 ms ≈ 4.6 hours

fn bucket_of(gap: SimDuration) -> usize {
    let ms = gap.as_millis_f64().max(1.0);
    (ms.log2().floor() as usize).min(NUM_BUCKETS - 1)
}

fn bucket_mid(bucket: usize) -> SimDuration {
    SimDuration::from_millis_f64(1.5 * (1u64 << bucket) as f64)
}

impl AdapterHistory {
    fn new(at: SimTime) -> Self {
        AdapterHistory {
            last_seen: at,
            gap_buckets: vec![0; NUM_BUCKETS],
            observations: 0,
        }
    }

    fn observe(&mut self, at: SimTime) {
        if at > self.last_seen {
            let gap = at.saturating_since(self.last_seen);
            self.gap_buckets[bucket_of(gap)] += 1;
            self.observations += 1;
        }
        self.last_seen = self.last_seen.max(at);
    }

    /// Median inter-arrival gap (bucket midpoint).
    fn median_gap(&self) -> Option<SimDuration> {
        if self.observations == 0 {
            return None;
        }
        let target = self.observations.div_ceil(2);
        let mut acc = 0;
        for (k, &c) in self.gap_buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(bucket_mid(k));
            }
        }
        None
    }
}

/// One adapter the predictor expects to be used soon.
///
/// Produced by [`HistogramLoadPredictor::forecast`]; the cluster control
/// plane thresholds on `rate` (pre-replicate only adapters that are
/// actually hot) and sums rates into a predicted-arrivals signal for the
/// autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forecast {
    /// The adapter predicted to arrive.
    pub adapter: AdapterId,
    /// Predicted instant of its next use (never in the past).
    pub predicted_at: SimTime,
    /// Estimated arrival rate in requests/second (the reciprocal of the
    /// median inter-arrival gap).
    pub rate: f64,
}

/// Predicts which adapters will be needed soon, from observed arrivals.
///
/// ```
/// use chameleon_predictor::HistogramLoadPredictor;
/// use chameleon_models::AdapterId;
/// use chameleon_simcore::{SimDuration, SimTime};
///
/// let mut p = HistogramLoadPredictor::new();
/// // Adapter 1 arrives every second.
/// for s in 0..10 {
///     p.observe(AdapterId(1), SimTime::from_secs_f64(s as f64));
/// }
/// let next = p.predict_next_use(AdapterId(1), SimTime::from_secs_f64(10.0)).unwrap();
/// assert!(next <= SimTime::from_secs_f64(12.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistogramLoadPredictor {
    histories: HashMap<AdapterId, AdapterHistory>,
}

impl HistogramLoadPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        HistogramLoadPredictor::default()
    }

    /// Records that a request for `adapter` arrived at `at`.
    pub fn observe(&mut self, adapter: AdapterId, at: SimTime) {
        self.histories
            .entry(adapter)
            .or_insert_with(|| AdapterHistory::new(at))
            .observe(at);
    }

    /// Number of adapters with any history.
    pub fn tracked(&self) -> usize {
        self.histories.len()
    }

    /// Predicts the next use of `adapter`: `max(now, last_seen + median
    /// gap)`. Returns `None` before two observations exist (no gap yet).
    pub fn predict_next_use(&self, adapter: AdapterId, now: SimTime) -> Option<SimTime> {
        let h = self.histories.get(&adapter)?;
        let gap = h.median_gap()?;
        Some((h.last_seen + gap).max(now))
    }

    /// Estimated arrival rate of `adapter` in requests/second: the
    /// reciprocal of the median inter-arrival gap. `None` before two
    /// observations exist.
    pub fn predicted_rate(&self, adapter: AdapterId) -> Option<f64> {
        let gap = self.histories.get(&adapter)?.median_gap()?;
        let secs = gap.as_secs_f64();
        (secs > 0.0).then(|| 1.0 / secs)
    }

    /// Adapters predicted to be used within `window` from `now`, most
    /// imminent first — the prefetch candidate list.
    ///
    /// Ordering is pinned: ascending predicted time, ties broken by
    /// ascending [`AdapterId`] (two adapters whose bucket midpoints
    /// collapse to the same instant always list in id order).
    pub fn candidates(&self, now: SimTime, window: SimDuration) -> Vec<AdapterId> {
        let mut out = Vec::new();
        self.forecast_into(now, window, &mut out);
        out.into_iter().map(|f| f.adapter).collect()
    }

    /// The full forecast behind [`candidates`](Self::candidates):
    /// `(adapter, predicted time, rate)` for every adapter predicted
    /// within `window` of `now`, sorted by `(predicted_at, adapter)`.
    pub fn forecast(&self, now: SimTime, window: SimDuration) -> Vec<Forecast> {
        let mut out = Vec::new();
        self.forecast_into(now, window, &mut out);
        out
    }

    /// [`forecast`](Self::forecast) into a caller-owned buffer (cleared
    /// first), so per-barrier control-plane scans allocate nothing in the
    /// steady state.
    ///
    /// An overdue prediction is clamped to `now` rather than the past —
    /// but only within a grace period of [`STALE_GAPS`] median gaps since
    /// the last observation. Past that the adapter has *missed* several
    /// predicted arrivals (its regime changed: a popularity shift, a
    /// tenant going quiet) and it drops out of the forecast until seen
    /// again. Without this cutoff a formerly hot adapter would sort at
    /// the head of every forecast forever — monopolising pre-replication
    /// budgets and permanently inflating predicted-arrival signals.
    pub fn forecast_into(&self, now: SimTime, window: SimDuration, out: &mut Vec<Forecast>) {
        let deadline = now + window;
        out.clear();
        for (&id, h) in &self.histories {
            let Some(gap) = h.median_gap() else { continue };
            if now.saturating_since(h.last_seen) > gap.mul_f64(STALE_GAPS) {
                continue; // several predicted arrivals missed: stale
            }
            let predicted_at = (h.last_seen + gap).max(now);
            if predicted_at > deadline {
                continue;
            }
            let secs = gap.as_secs_f64();
            if secs <= 0.0 {
                continue;
            }
            out.push(Forecast {
                adapter: id,
                predicted_at,
                rate: 1.0 / secs,
            });
        }
        // Pinned tie-break: predicted instant, then adapter id. The map
        // iteration order above is arbitrary; this sort is what makes the
        // forecast deterministic.
        out.sort_unstable_by_key(|f| (f.predicted_at, f.adapter));
    }
}

/// Median gaps an adapter may go unseen before its forecast goes stale:
/// one gap is merely "due now", a few more is jitter, beyond that the
/// arrival pattern the histogram learned no longer describes the present.
pub const STALE_GAPS: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn needs_two_observations() {
        let mut p = HistogramLoadPredictor::new();
        assert_eq!(p.predict_next_use(AdapterId(1), t(0.0)), None);
        p.observe(AdapterId(1), t(1.0));
        assert_eq!(p.predict_next_use(AdapterId(1), t(1.0)), None);
        p.observe(AdapterId(1), t(2.0));
        assert!(p.predict_next_use(AdapterId(1), t(2.0)).is_some());
        assert_eq!(p.tracked(), 1);
    }

    #[test]
    fn periodic_adapter_predicted_on_time() {
        let mut p = HistogramLoadPredictor::new();
        for s in 0..20 {
            p.observe(AdapterId(1), t(s as f64));
        }
        let next = p.predict_next_use(AdapterId(1), t(19.0)).unwrap();
        // 1 s gaps land in the [1024 ms, 2048 ms) bucket → midpoint 1.536 s.
        assert!(next > t(19.0) && next <= t(21.0), "predicted {next}");
    }

    #[test]
    fn prediction_never_in_past() {
        let mut p = HistogramLoadPredictor::new();
        p.observe(AdapterId(1), t(0.0));
        p.observe(AdapterId(1), t(1.0));
        let next = p.predict_next_use(AdapterId(1), t(100.0)).unwrap();
        assert!(next >= t(100.0));
    }

    #[test]
    fn candidates_ordered_by_imminence() {
        let mut p = HistogramLoadPredictor::new();
        // Adapter 1: 1 s period, last seen t=10.
        for s in 0..=10 {
            p.observe(AdapterId(1), t(s as f64));
        }
        // Adapter 2: 4 s period, last seen t=8.
        for s in (0..=8).step_by(4) {
            p.observe(AdapterId(2), t(s as f64));
        }
        // Adapter 3: seen once — unpredictable.
        p.observe(AdapterId(3), t(9.0));
        let c = p.candidates(t(10.0), SimDuration::from_secs(30));
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], AdapterId(1), "1s-period adapter is most imminent");
        assert_eq!(c[1], AdapterId(2));
        // Tight window keeps only the most imminent adapter: adapter 1 is
        // predicted at ~10.77 s (768 ms bucket midpoint after last_seen=10),
        // adapter 2 at ~11.07 s (3.07 s midpoint after last_seen=8).
        let tight = p.candidates(t(10.0), SimDuration::from_millis(900));
        assert_eq!(tight, vec![AdapterId(1)]);
    }

    #[test]
    fn bursty_history_uses_median_not_mean() {
        let mut p = HistogramLoadPredictor::new();
        // Nine 100 ms gaps and one 100 s outlier: median stays ~100 ms.
        let mut now = 0.0;
        p.observe(AdapterId(7), t(now));
        for _ in 0..9 {
            now += 0.1;
            p.observe(AdapterId(7), t(now));
        }
        now += 100.0;
        p.observe(AdapterId(7), t(now));
        let next = p.predict_next_use(AdapterId(7), t(now)).unwrap();
        let gap = next.saturating_since(t(now));
        assert!(
            gap < SimDuration::from_secs(1),
            "median-based gap should be small, got {gap}"
        );
    }

    #[test]
    fn equal_predicted_times_tie_break_by_adapter_id() {
        // Give several adapters *identical* histories (same gaps, same
        // last-seen instant): every predicted time collapses to the same
        // value, so ordering is decided purely by the pinned tie-break.
        // Insertion order is scrambled to catch any map-order leakage.
        let mut p = HistogramLoadPredictor::new();
        for &id in &[9u32, 2, 17, 5, 11] {
            for s in 0..6 {
                p.observe(AdapterId(id), t(s as f64));
            }
        }
        let c = p.candidates(t(5.0), SimDuration::from_secs(10));
        assert_eq!(
            c,
            vec![
                AdapterId(2),
                AdapterId(5),
                AdapterId(9),
                AdapterId(11),
                AdapterId(17)
            ],
            "equal predicted times must order by ascending AdapterId"
        );
        // And the full forecast agrees with the candidate list.
        let f = p.forecast(t(5.0), SimDuration::from_secs(10));
        assert_eq!(
            f.iter().map(|x| x.adapter).collect::<Vec<_>>(),
            c,
            "forecast and candidates must share one pinned order"
        );
        assert!(f.windows(2).all(|w| w[0].predicted_at <= w[1].predicted_at));
    }

    #[test]
    fn forecast_is_deterministic_and_sorted() {
        let mut p = HistogramLoadPredictor::new();
        for a in 0..40u32 {
            // Distinct periods and phases per adapter.
            let period = 0.5 + f64::from(a % 7) * 0.3;
            for k in 0..8 {
                p.observe(AdapterId(a), t(f64::from(a % 3) * 0.1 + k as f64 * period));
            }
        }
        let now = t(8.0);
        let w = SimDuration::from_secs(5);
        let first = p.forecast(now, w);
        assert_eq!(
            first,
            p.forecast(now, w),
            "forecast must be a pure function"
        );
        assert!(
            first
                .windows(2)
                .all(|w| (w[0].predicted_at, w[0].adapter) < (w[1].predicted_at, w[1].adapter)),
            "forecast must be strictly sorted by (time, id)"
        );
    }

    #[test]
    fn forecast_drops_stale_adapters() {
        let mut p = HistogramLoadPredictor::new();
        // Two 1 Hz adapters; adapter 2 keeps arriving, adapter 1 stops.
        for s in 0..10 {
            p.observe(AdapterId(1), t(s as f64));
            p.observe(AdapterId(2), t(s as f64));
        }
        for s in 10..40 {
            p.observe(AdapterId(2), t(s as f64));
        }
        let w = SimDuration::from_secs(60);
        // Just overdue (within the grace period): still forecast, at now.
        let soon = p.forecast(t(11.0), w);
        assert!(soon.iter().any(|f| f.adapter == AdapterId(1)));
        // Dozens of missed arrivals later: adapter 1 has aged out, the
        // still-active adapter 2 remains.
        let late = p.forecast(t(39.0), w);
        assert!(
            !late.iter().any(|f| f.adapter == AdapterId(1)),
            "an adapter silent for ~30 predicted periods must leave the forecast"
        );
        assert!(late.iter().any(|f| f.adapter == AdapterId(2)));
        // A fresh observation brings it straight back.
        p.observe(AdapterId(1), t(40.0));
        let back = p.forecast(t(40.0), w);
        assert!(back.iter().any(|f| f.adapter == AdapterId(1)));
    }

    #[test]
    fn rate_estimator_tracks_period() {
        let mut p = HistogramLoadPredictor::new();
        assert_eq!(p.predicted_rate(AdapterId(1)), None);
        for s in 0..20 {
            p.observe(AdapterId(1), t(s as f64));
        }
        // 1 s gaps land in the [512, 1024) ms bucket (midpoint 768 ms):
        // the estimated rate is 1/0.768 ≈ 1.3/s — same order as the true
        // 1/s rate, which is all the thresholding needs.
        let rate = p.predicted_rate(AdapterId(1)).unwrap();
        assert!((0.5..=2.0).contains(&rate), "rate {rate}");
        // A 10x slower adapter estimates a ~10x smaller rate.
        for s in 0..20 {
            p.observe(AdapterId(2), t(s as f64 * 10.0));
        }
        let slow = p.predicted_rate(AdapterId(2)).unwrap();
        assert!(slow < rate / 4.0, "slow {slow} vs fast {rate}");
        // Forecast rows carry the same estimate.
        let f = p.forecast(t(200.0), SimDuration::from_secs(60));
        for row in &f {
            assert_eq!(Some(row.rate), p.predicted_rate(row.adapter));
        }
    }

    #[test]
    fn duplicate_timestamps_ignored() {
        let mut p = HistogramLoadPredictor::new();
        p.observe(AdapterId(1), t(1.0));
        p.observe(AdapterId(1), t(1.0));
        assert_eq!(p.predict_next_use(AdapterId(1), t(1.0)), None);
    }
}
