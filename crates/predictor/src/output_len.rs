//! Output-length prediction.
//!
//! The decode length of a request is unknown at admission (§2). Schedulers
//! that order by size therefore rely on a proxy-model predictor. The paper
//! uses μServe's BERT-based bucket classifier and reports ≈80 % accuracy;
//! Figure 19 sweeps the accuracy artificially to 100/80/60 %. We reproduce
//! that experimental axis directly: [`NoisyBucketPredictor`] returns the
//! true bucket with probability `accuracy` and an error-perturbed bucket
//! otherwise.

use chameleon_simcore::dist::{LogNormal, Sample};
use chameleon_simcore::SimRng;
use chameleon_workload::Request;

/// Predicts the number of output tokens a request will generate.
///
/// `Send` is a supertrait so engines (which own their predictor) can be
/// stepped on worker threads under parallel cluster execution.
pub trait OutputLenPredictor: Send {
    /// Predicts the output length of `request`.
    fn predict(&mut self, request: &Request) -> u32;

    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// No prediction at all: assume every request generates the workload's
/// maximum output length. This is how systems **without** an output-length
/// predictor (S-LoRA's stack) must provision KV memory at admission — the
/// paper's §5.2.1 observation that S-LoRA "violates SLO well before it can
/// fully utilize all the available GPU memory" follows from exactly this
/// conservatism.
#[derive(Debug, Clone, Copy)]
pub struct WorstCasePredictor {
    max_output: u32,
}

impl WorstCasePredictor {
    /// Creates the predictor with the workload's maximum output length.
    ///
    /// # Panics
    ///
    /// Panics if `max_output` is zero.
    pub fn new(max_output: u32) -> Self {
        assert!(max_output > 0, "zero max output");
        WorstCasePredictor { max_output }
    }
}

impl OutputLenPredictor for WorstCasePredictor {
    fn predict(&mut self, _request: &Request) -> u32 {
        self.max_output
    }
    fn name(&self) -> &'static str {
        "worst-case"
    }
}

/// Perfect prediction — the paper's 100 %-accuracy configuration.
#[derive(Debug, Clone, Default)]
pub struct OraclePredictor;

impl OraclePredictor {
    /// Creates the oracle.
    pub fn new() -> Self {
        OraclePredictor
    }
}

impl OutputLenPredictor for OraclePredictor {
    fn predict(&mut self, request: &Request) -> u32 {
        request.output_tokens()
    }
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// BERT-proxy stand-in: bucketised prediction with a tunable accuracy.
///
/// Output lengths are classified into power-of-two buckets (the μServe
/// classifier style). With probability `accuracy` the predictor returns the
/// true bucket's representative value; otherwise it returns the bucket of a
/// log-normally perturbed length — a *plausible but wrong* prediction, the
/// realistic failure mode of a learned classifier.
///
/// ```
/// use chameleon_predictor::{NoisyBucketPredictor, OutputLenPredictor};
/// use chameleon_simcore::SimRng;
/// # use chameleon_workload::{Request, RequestId};
/// # use chameleon_models::{AdapterId, AdapterRank};
/// # use chameleon_simcore::SimTime;
/// let mut p = NoisyBucketPredictor::new(1.0, SimRng::seed(1));
/// # let r = Request::new(RequestId(0), SimTime::ZERO, 10, 100, AdapterId(0), AdapterRank::new(8));
/// // At accuracy 1.0 the prediction is always the true bucket.
/// assert_eq!(p.predict(&r), 96); // bucket [64,128) → midpoint 96
/// ```
#[derive(Debug, Clone)]
pub struct NoisyBucketPredictor {
    accuracy: f64,
    error: LogNormal,
    rng: SimRng,
}

impl NoisyBucketPredictor {
    /// Creates a predictor with the given bucket accuracy in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    pub fn new(accuracy: f64, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy {accuracy}");
        NoisyBucketPredictor {
            accuracy,
            // Misprediction error: ~2.2× median multiplicative deviation.
            error: LogNormal::new(0.0, 0.8),
            rng,
        }
    }

    /// The configured accuracy.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The power-of-two bucket representative for a length: lengths in
    /// `[2^k, 2^(k+1))` map to their bucket midpoint `1.5 · 2^k`.
    pub fn bucketise(len: u32) -> u32 {
        let len = len.max(1);
        let k = 31 - len.leading_zeros();
        let lo = 1u32 << k;
        lo + lo / 2
    }
}

impl OutputLenPredictor for NoisyBucketPredictor {
    fn predict(&mut self, request: &Request) -> u32 {
        let truth = request.output_tokens();
        if self.rng.chance(self.accuracy) {
            Self::bucketise(truth)
        } else {
            let factor = self.error.sample(&mut self.rng).max(0.05);
            let noisy = ((truth as f64) * factor).round().max(1.0) as u32;
            // A wrong prediction that lands in the right bucket is still
            // wrong in spirit; nudge it one bucket away deterministically.
            let b = Self::bucketise(noisy);
            if b == Self::bucketise(truth) {
                if factor >= 1.0 {
                    Self::bucketise(b.saturating_mul(2))
                } else {
                    Self::bucketise((b / 2).max(1))
                }
            } else {
                b
            }
        }
    }

    fn name(&self) -> &'static str {
        "noisy-bucket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterId, AdapterRank};
    use chameleon_simcore::SimTime;
    use chameleon_workload::RequestId;

    fn req(output: u32) -> Request {
        Request::new(
            RequestId(0),
            SimTime::ZERO,
            64,
            output,
            AdapterId(0),
            AdapterRank::new(8),
        )
    }

    #[test]
    fn worst_case_always_max() {
        let mut p = WorstCasePredictor::new(512);
        assert_eq!(p.predict(&req(3)), 512);
        assert_eq!(p.predict(&req(400)), 512);
        assert_eq!(p.name(), "worst-case");
    }

    #[test]
    fn oracle_is_exact() {
        let mut p = OraclePredictor::new();
        assert_eq!(p.predict(&req(137)), 137);
        assert_eq!(p.name(), "oracle");
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(NoisyBucketPredictor::bucketise(1), 1);
        assert_eq!(NoisyBucketPredictor::bucketise(2), 3);
        assert_eq!(NoisyBucketPredictor::bucketise(3), 3);
        assert_eq!(NoisyBucketPredictor::bucketise(4), 6);
        assert_eq!(NoisyBucketPredictor::bucketise(100), 96);
        assert_eq!(NoisyBucketPredictor::bucketise(128), 192);
        assert_eq!(NoisyBucketPredictor::bucketise(0), 1, "clamps zero");
    }

    #[test]
    fn full_accuracy_always_correct_bucket() {
        let mut p = NoisyBucketPredictor::new(1.0, SimRng::seed(1));
        for len in [5u32, 60, 100, 500, 1000] {
            assert_eq!(p.predict(&req(len)), NoisyBucketPredictor::bucketise(len));
        }
    }

    #[test]
    fn zero_accuracy_never_correct_bucket() {
        let mut p = NoisyBucketPredictor::new(0.0, SimRng::seed(2));
        for len in [5u32, 60, 100, 500] {
            for _ in 0..50 {
                let pred = p.predict(&req(len));
                assert_ne!(
                    NoisyBucketPredictor::bucketise(pred),
                    NoisyBucketPredictor::bucketise(len),
                    "accuracy-0 predictor produced the true bucket for {len}"
                );
            }
        }
    }

    #[test]
    fn empirical_accuracy_matches_knob() {
        let mut p = NoisyBucketPredictor::new(0.8, SimRng::seed(3));
        let truth = 100u32;
        let n = 5000;
        let correct = (0..n)
            .filter(|_| {
                NoisyBucketPredictor::bucketise(p.predict(&req(truth)))
                    == NoisyBucketPredictor::bucketise(truth)
            })
            .count();
        let acc = correct as f64 / n as f64;
        assert!((acc - 0.8).abs() < 0.03, "empirical accuracy {acc}");
    }

    #[test]
    fn mispredictions_are_plausible() {
        // Errors should be within a couple of orders of magnitude, not wild.
        let mut p = NoisyBucketPredictor::new(0.0, SimRng::seed(4));
        for _ in 0..200 {
            let pred = p.predict(&req(100));
            assert!(
                (1..100 * 64).contains(&pred),
                "implausible prediction {pred}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn rejects_bad_accuracy() {
        let _ = NoisyBucketPredictor::new(1.5, SimRng::seed(0));
    }
}
