//! Scheduler playground (§3.3 / §5.3): watch head-of-line blocking and
//! starvation happen, per request-size class.
//!
//! FIFO delays everyone equally (small requests stuck behind large ones);
//! SJF keeps small requests fast by starving large ones; the Chameleon
//! multi-level queue serves every class.
//!
//! ```text
//! cargo run --release --example scheduler_playground
//! ```

use chameleon_repro::core::{preset, sim::Simulation, workloads};

fn main() {
    // Past the baseline knee, where queues actually form.
    let rps = 12.5;
    println!("Queueing delay by request class at {rps} RPS (overloaded)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "scheduler", "small", "medium", "large", "p99_ttft"
    );
    for cfg in [
        preset::slora(),
        preset::slora_sjf(),
        preset::static_mlq(),
        preset::chameleon(),
    ] {
        let label = cfg.label.clone();
        let mut sim = Simulation::new(cfg, 3);
        let trace = workloads::splitwise(rps, 150.0, 3, sim.pool());
        let report = sim.run(&trace);
        let by_class = report.queue_delay_by_class();
        println!(
            "{:<14} {:>11.3}s {:>11.3}s {:>11.3}s {:>11.3}s",
            label,
            by_class[0].1,
            by_class[1].1,
            by_class[2].1,
            report.p99_ttft(),
        );
    }
    println!("\nFIFO: uniform (and large) delays — small requests blocked behind big ones.");
    println!("SJF: small requests fly, large requests starve (watch the large column).");
    println!("Chameleon: every class is served each scheduling cycle under its quota.");
}
