//! Correlated failures and fault domains, end to end: a whole rack dies
//! mid-burst on a 4-engine, two-rack fleet, on identical traces, two
//! ways — with domain-aware anti-affinity placement and without it.
//!
//! 1. **anti-affinity** — the fleet knows its topology: spill targets,
//!    speculative pre-replications and crash re-homing all prefer the
//!    best engine *outside* the primary's rack, so when rack 1 takes
//!    both its engines down at one barrier, the warm copies and the
//!    spilled work are already on the surviving rack.
//! 2. **topology-blind** — the identical fleet and racks, but second
//!    choices rank engines by weight alone. Roughly a third of them
//!    land on the primary's own rack and die with it, so the survivors
//!    inherit a deeper, colder backlog and the shed gate trips more.
//!
//! A third scenario shows the partition injector: the coordinator loses
//! sight of rack 1 for four seconds, routes around the dark rack, and
//! re-dispatches every stranded request when the link heals — nothing
//! is lost.
//!
//! Run with `cargo run --release --example fault_domains`. The claims
//! are asserted, so CI fails if domain awareness stops paying for
//! itself: anti-affinity strictly beats blind placement on offered P99
//! and on requests lost to the fault, the MTTR ledger closes every
//! crash episode, and the partition run completes every offered request.

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, FaultSpec, RunReport, SystemConfig,
};
use chameleon_repro::simcore::SimTime;

const SEED: u64 = 7;
const CRASH_AT_SECS: f64 = 14.0;

/// P99 TTFT over **all offered** requests: anything unserved (failed or
/// shed) counts as an infinite sample.
fn p99_all_offered(report: &RunReport, offered: usize) -> f64 {
    let mut xs: Vec<f64> = report
        .records
        .iter()
        .filter_map(|r| r.ttft())
        .map(|d| d.as_secs_f64())
        .collect();
    xs.resize(offered, f64::INFINITY);
    xs.sort_by(f64::total_cmp);
    xs[((offered as f64 * 0.99).ceil() as usize).max(1) - 1]
}

/// The same fleet with the anti-affinity preference switched off: spill,
/// replica and re-homing second choices ignore the racks (the racks
/// themselves stay, so the crash scopes identically).
fn topology_blind(mut cfg: SystemConfig) -> SystemConfig {
    let fleet = cfg.fleet.as_mut().expect("domains preset carries a fleet");
    let topo = fleet
        .topology
        .take()
        .expect("domains preset carries a topology");
    fleet.topology = Some(topo.without_anti_affinity());
    cfg.with_label("Chameleon-DP4-DomainsBlind")
}

fn show(name: &str, r: &RunReport, offered: usize) {
    let f = &r.routing.fault;
    let p99 = p99_all_offered(r, offered);
    println!(
        "  {name:<20} served={:<4} lost={:<3} recovered={:<3} prewarm-hits={:<3} \
         availability={:>6.2}% p99-offered={}",
        r.completed(),
        r.requests_lost_to_faults(),
        f.requests_recovered,
        r.routing.predictive.prewarm_hits,
        r.availability(offered) * 100.0,
        if p99.is_finite() {
            format!("{p99:.3}s")
        } else {
            "inf".into()
        },
    );
}

fn main() {
    println!("== Whole-rack crash mid-burst: anti-affinity vs topology-blind ==");
    let fault = || {
        FaultSpec::new()
            .with_domain_crash(1, SimTime::from_secs_f64(CRASH_AT_SECS))
            .with_shedding(16.0)
    };
    let affine_cfg = preset::chameleon_cluster_domains(4).with_fault(fault());
    let blind_cfg = topology_blind(preset::chameleon_cluster_domains(4).with_fault(fault()));

    let pool = Simulation::new(affine_cfg.clone(), SEED).pool().clone();
    // A 2x burst from 10 s to 20 s; rack 1 dies at 14 s, inside it.
    let trace = workloads::splitwise_bursty(6.0, 40.0, 10.0, 10.0, 2.0, SEED, &pool);
    let offered = trace.len();
    println!(
        "  {offered} requests over 40s, 2x burst 10s-20s, rack 1 (engines 2+3) dies at \
         {CRASH_AT_SECS}s\n"
    );

    let affine = Simulation::new(affine_cfg, SEED).run(&trace);
    let blind = Simulation::new(blind_cfg, SEED).run(&trace);
    show("anti-affinity", &affine, offered);
    show("topology-blind", &blind, offered);

    // Nothing lost, nothing duplicated — and the crash scoped identically.
    affine.assert_request_conservation(offered);
    blind.assert_request_conservation(offered);
    for (arm, run) in [("affine", &affine), ("blind", &blind)] {
        let f = &run.routing.fault;
        assert_eq!(f.domains_failed, 1, "{arm}: the rack crash must land");
        assert_eq!(f.engines_failed, 2, "{arm}: both rack members must die");
    }

    // The efficacy claim: placing second choices off-rack strictly wins
    // on the offered tail and on requests lost to the fault.
    let f = &affine.routing.fault;
    let p99_affine = p99_all_offered(&affine, offered);
    let p99_blind = p99_all_offered(&blind, offered);
    assert!(
        p99_affine < p99_blind,
        "anti-affinity ({p99_affine}s) must strictly beat blind ({p99_blind}s) on offered P99"
    );
    assert!(
        affine.requests_lost_to_faults() < blind.requests_lost_to_faults(),
        "anti-affinity must lose strictly fewer requests than blind placement"
    );
    assert!(f.requests_recovered > 0, "the crash hit an idle rack");
    assert_eq!(f.requests_failed, 0, "recovery abandoned victim requests");

    // The MTTR ledger closed the episode: finite time-to-redispatch, and
    // the last victim completion can only come later.
    assert!(
        f.mttr_redispatch > 0.0 && f.mttr_redispatch.is_finite(),
        "MTTR-redispatch never recorded"
    );
    assert!(f.mttr_complete >= f.mttr_redispatch);
    println!(
        "\n  rack crash episode: MTTR {:.3}s to full re-dispatch, {:.3}s to last victim \
         completion; anti-affinity lost {} vs {} blind\n",
        f.mttr_redispatch,
        f.mttr_complete,
        affine.requests_lost_to_faults(),
        blind.requests_lost_to_faults(),
    );

    println!("== Coordinator<->rack partition: route around the dark rack, heal, re-dispatch ==");
    let part_cfg =
        preset::chameleon_cluster_domains(4).with_fault(FaultSpec::new().with_partition(
            1,
            SimTime::from_secs_f64(5.0),
            SimTime::from_secs_f64(9.0),
        ));
    let mut sim = Simulation::new(part_cfg, SEED);
    let trace = workloads::splitwise(16.0, 15.0, SEED, sim.pool());
    let offered = trace.len();
    let part = sim.run(&trace);
    part.assert_request_conservation(offered);
    let f = &part.routing.fault;
    assert_eq!(f.partitions, 1, "the partition never opened");
    assert_eq!(f.engines_failed, 0, "a partition is not a crash");
    assert!(
        f.requests_recovered > 0,
        "no stranded work was re-dispatched"
    );
    assert_eq!(
        part.completed() as usize,
        offered,
        "a healed partition must lose nothing"
    );
    println!(
        "  rack 1 dark 5s-9s: {} stranded requests re-dispatched, {}/{offered} served, \
         0 lost",
        f.requests_recovered,
        part.completed(),
    );
}
