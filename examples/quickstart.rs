//! Quickstart: serve a many-adapter workload with Chameleon and print the
//! headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chameleon_repro::core::{preset, sim::Simulation, workloads};

fn main() {
    // The paper's default environment: Llama-7B on an A40 with 100 LoRA
    // adapters across five ranks, power-law adapter popularity.
    let config = preset::chameleon();
    let mut sim = Simulation::new(config, 42);

    // A 60-second slice of the scaled Splitwise conversation workload at a
    // medium request rate.
    let trace = workloads::splitwise(9.0, 60.0, 42, sim.pool());
    println!(
        "running {} requests (mean input {:.0} tok, mean output {:.0} tok)...",
        trace.len(),
        trace.summary().mean_input,
        trace.summary().mean_output
    );

    let report = sim.run(&trace);

    let ttft = report.ttft_summary().expect("non-empty run");
    let tbt = report.tbt_summary().expect("tokens were generated");
    println!("completed          : {}", report.completed());
    println!("TTFT    p50 / p99  : {:.3}s / {:.3}s", ttft.p50, ttft.p99);
    println!(
        "TBT     p50 / p99  : {:.1}ms / {:.1}ms",
        tbt.p50 * 1e3,
        tbt.p99 * 1e3
    );
    println!("SLO (5x isolated)  : {:.2}s", report.slo.as_secs_f64());
    println!(
        "SLO violations     : {:.2}%",
        report.slo_violation_fraction() * 100.0
    );
    println!(
        "adapter cache      : {:.1}% hit rate, {} evictions",
        report.hit_rate() * 100.0,
        report.cache_stats.evictions
    );
    println!(
        "PCIe traffic       : {:.1} MB total ({:.2} MB/s)",
        report.pcie_total_bytes as f64 / 1e6,
        report.pcie_mean_bandwidth() / 1e6
    );
}
