//! Adapter-cache eviction-policy study (§5.3): how much of Chameleon's win
//! comes from *having* a cache, and how much from the tuned cost-aware
//! eviction score?
//!
//! ```text
//! cargo run --release --example cache_policy_study
//! ```

use chameleon_repro::core::{preset, sim::Simulation, workloads, SystemConfig};

fn main() {
    println!("Cache-policy study: P99 TTFT and hit rate at medium load (9 RPS)\n");
    // A larger pool than GPU memory can hold makes eviction decisions
    // matter: 300 adapters is ~30 GB of weights against ~33 GB of free
    // memory shared with the KV cache.
    let systems: Vec<SystemConfig> = vec![
        preset::slora(),
        preset::chameleon_lru(),
        preset::chameleon_gdsf(),
        preset::chameleon_fairshare(),
        preset::chameleon(),
    ]
    .into_iter()
    .map(|c| c.with_adapters(300))
    .collect();

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "policy", "p50_ttft", "p99_ttft", "hit_rate", "evictions", "bytes_moved"
    );
    for cfg in systems {
        let label = cfg.label.clone();
        let mut sim = Simulation::new(cfg, 11);
        let trace = workloads::splitwise(9.0, 150.0, 11, sim.pool());
        let report = sim.run(&trace);
        let s = report.ttft_summary().expect("non-empty");
        println!(
            "{:<16} {:>9.3}s {:>9.3}s {:>9.1}% {:>12} {:>10.1}GB",
            label,
            s.p50,
            s.p99,
            report.hit_rate() * 100.0,
            report.cache_stats.evictions,
            report.cache_stats.bytes_loaded as f64 / 1e9,
        );
    }
    println!("\nThe compound score (frequency + recency + size, F/R/S = 0.45/0.10/0.45)");
    println!("keeps costly-to-reload large adapters resident and prefers evicting small,");
    println!("cold, unpopular ones — reloads get cheaper and rarer at the same time.");
}
