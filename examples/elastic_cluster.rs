//! Elastic heterogeneous cluster: the autoscaler rides out a load burst.
//!
//! A Splitwise-like trace runs at a calm 4 RPS with a 20× burst between
//! t=10s and t=20s. The fleet starts as two TP1 engines; the queue-depth
//! watching autoscaler grows it with TP2 engines (capacity-weighted
//! rendezvous immediately hands each newcomer a proportional adapter
//! shard) and drains back down once the backlog clears — each drain
//! stopping new dispatches, finishing in-flight work, and migrating only
//! the departing engine's shard.
//!
//! ```text
//! cargo run --release --example elastic_cluster
//! ```

use chameleon_repro::core::{preset, workloads, Simulation};
use chameleon_repro::simcore::SimDuration;

fn main() {
    let mut cfg = preset::chameleon_cluster_elastic().with_adapters(300);
    // Controller cadence tuned to the 60-second trace: evaluate every
    // second, hold decisions apart by 3 seconds.
    let auto = cfg.autoscale.as_mut().expect("elastic preset autoscales");
    auto.controller.interval = SimDuration::from_secs(1);
    auto.controller.cooldown = SimDuration::from_secs(3);
    auto.controller.scale_up_mean_queue = 4.0;
    auto.controller.scale_down_mean_queue = 0.5;
    let (min_engines, max_engines) = (auto.controller.min_engines, auto.controller.max_engines);

    let mut sim = Simulation::new(cfg, 21);
    let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, 21, sim.pool());
    println!(
        "-- {} requests over 60s (20x burst at 10s..20s), fleet 2xTP1 scaling {}..{} with TP2 growth --\n",
        trace.len(),
        min_engines,
        max_engines,
    );

    let report = sim.run(&trace);
    let r = &report.routing;

    println!("fleet history ({} policy):", r.policy);
    println!("  {:<8} {:>6} {:>12}", "engine", "shape", "dispatched");
    for (pos, (&id, &count)) in r.engine_ids.iter().zip(&r.per_engine).enumerate() {
        let shape = if pos < 2 { "TP1" } else { "TP2" };
        let role = if pos < 2 { "initial" } else { "added" };
        println!("  e{:<7} {shape:>6} {count:>12}   ({role})", id.0);
    }

    println!();
    println!("engines added:        {:>8}", r.engines_added);
    println!("engines drained:      {:>8}", r.engines_drained);
    println!(
        "adapters migrated:    {:>8}   (minimal re-homing: only the joining/departing shards)",
        r.adapters_rehomed
    );
    println!(
        "affinity hit rate:    {:>7.1}%",
        report.affinity_hit_rate() * 100.0
    );
    println!(
        "spill rate:           {:>7.1}%",
        report.spill_rate() * 100.0
    );
    println!("cache hit rate:       {:>7.1}%", report.hit_rate() * 100.0);
    println!(
        "p50 / p99 TTFT:       {:.3}s / {:.3}s",
        report.p50_ttft(),
        report.p99_ttft()
    );
    println!(
        "completed:            {:>8} / {}",
        report.completed(),
        trace.len()
    );

    assert_eq!(report.completed(), trace.len(), "elastic run lost requests");
    assert!(r.engines_added > 0, "the burst should have grown the fleet");
    assert!(
        r.engines_drained > 0,
        "the fleet should have drained back after the burst"
    );
    assert!(
        r.adapters_rehomed > 0,
        "fleet changes should migrate shards"
    );
    println!(
        "\nthe fleet grew 2 -> {} through the burst and drained back to {}, \
         migrating {} adapter homes across {} fleet changes.",
        2 + r.engines_added,
        2 + r.engines_added as usize - r.engines_drained as usize,
        r.adapters_rehomed,
        r.engines_added + r.engines_drained,
    );
}
