//! The paper's motivating scenario: a production inference cluster serving
//! many fine-tuned variants of one base model, compared across serving
//! systems as the load ramps.
//!
//! Reproduces the headline comparison of §5.2 in miniature: S-LoRA's tail
//! collapses past its knee while Chameleon keeps serving.
//!
//! ```text
//! cargo run --release --example many_adapter_serving
//! ```

use chameleon_repro::core::{preset, sim::Simulation, workloads};

fn main() {
    println!("Many-adapter serving: S-LoRA vs Chameleon, Llama-7B / A40 / 100 adapters\n");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "RPS", "slora_p50", "slora_p99", "cham_p50", "cham_p99", "slora_hit", "cham_hit"
    );
    for rps in [6.0, 8.0, 9.5, 10.5, 11.5, 12.5] {
        let mut cells = Vec::new();
        let mut hits = Vec::new();
        for cfg in [preset::slora(), preset::chameleon()] {
            let mut sim = Simulation::new(cfg, 7);
            let trace = workloads::splitwise(rps, 120.0, 7, sim.pool());
            let report = sim.run(&trace);
            let s = report.ttft_summary().expect("non-empty");
            cells.push((s.p50, s.p99));
            hits.push(report.hit_rate());
        }
        println!(
            "{:<6} {:>11.3}s {:>11.3}s {:>11.3}s {:>11.3}s {:>9.1}% {:>9.1}%",
            rps,
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            hits[0] * 100.0,
            hits[1] * 100.0
        );
    }
    println!("\nPast S-LoRA's knee (~10.5 RPS here) Chameleon keeps both median and");
    println!("tail latency flat: adapter caching removes loads from the critical path");
    println!("and the multi-level queue removes head-of-line blocking.");
}
