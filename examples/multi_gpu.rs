//! Multi-GPU serving (§4.4, §5.6): tensor parallelism makes adapter
//! loading *relatively* more expensive, so caching helps more; data
//! parallelism scales out with a two-level scheduler.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use chameleon_repro::core::{preset, sim::Simulation, workloads};
use chameleon_repro::models::GpuSpec;

fn main() {
    println!("-- Tensor parallelism (Llama-7B on A100s) --\n");
    println!(
        "{:<6} {:>8} {:>14} {:>14} {:>10}",
        "TP", "RPS", "slora_p99", "cham_p99", "reduction"
    );
    for (tp, rps) in [(1u32, 20.0), (2, 32.0), (4, 48.0)] {
        let mut p99s = Vec::new();
        for base in [preset::slora(), preset::chameleon()] {
            let cfg = base.with_gpu(GpuSpec::a100_80gb()).with_tp(tp);
            let mut sim = Simulation::new(cfg, 5);
            let trace = workloads::splitwise(rps, 120.0, 5, sim.pool());
            p99s.push(sim.run(&trace).p99_ttft());
        }
        println!(
            "TP{:<4} {:>8} {:>13.3}s {:>13.3}s {:>9.1}%",
            tp,
            rps,
            p99s[0],
            p99s[1],
            (1.0 - p99s[1] / p99s[0].max(1e-9)) * 100.0
        );
    }

    println!("\n-- Data parallelism (4x A40 engines, two-level scheduler) --\n");
    let mut cfg = preset::chameleon();
    cfg.data_parallel = 4;
    let mut sim = Simulation::new(cfg, 5);
    // Four engines sustain roughly four times the single-engine load.
    let trace = workloads::splitwise(40.0, 90.0, 5, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    println!(
        "dispatched {} requests across 4 engines: p50 {:.3}s, p99 {:.3}s, hit {:.1}%",
        n,
        report.p50_ttft(),
        report.p99_ttft(),
        report.hit_rate() * 100.0
    );
    println!("(each engine keeps its own local scheduler and adapter-cache replica)");
}
