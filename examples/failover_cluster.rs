//! Fault injection and failure recovery, end to end: a mid-burst engine
//! crash on a 4-engine affinity fleet, on identical traces, three ways.
//!
//! 1. **clean** — no faults: the baseline the degraded runs are measured
//!    against.
//! 2. **crash + recovery** — engine 1 dies in the thick of a 3× burst.
//!    The coordinator's timeout detector notices at the next barrier,
//!    re-homes the dead engine's adapter shard onto the survivors and
//!    re-dispatches every queued and in-flight victim request through
//!    the router with capped exponential backoff; admission sheds only
//!    if the whole fleet's estimated TTFT blows past 20× the SLO (the
//!    estimate prices each engine's *entire* backlog, so mid-burst it
//!    runs far ahead of realised TTFT — a tight multiple would refuse
//!    work the fleet can absorb).
//! 3. **crash, no recovery** — the same crash with a zero retry budget:
//!    every victim request is abandoned, the honest cost of not having
//!    a failover path.
//!
//! Run with `cargo run --release --example failover_cluster`. The
//! failover claims are asserted, so CI fails if recovery stops working:
//! 100% of the dead engine's queue is re-dispatched, nothing is lost or
//! duplicated, and the P99 degradation stays bounded instead of going
//! infinite like the no-recovery ablation's.

use chameleon_repro::core::{preset, sim::Simulation, workloads, FaultSpec, RunReport};
use chameleon_repro::simcore::{SimDuration, SimTime};

const SEED: u64 = 7;
const CRASH_AT_SECS: f64 = 10.0;

/// P99 TTFT over **all offered** requests: anything unserved (failed or
/// shed) counts as an infinite sample.
fn p99_all_offered(report: &RunReport, offered: usize) -> f64 {
    let mut xs: Vec<f64> = report
        .records
        .iter()
        .filter_map(|r| r.ttft())
        .map(|d| d.as_secs_f64())
        .collect();
    xs.resize(offered, f64::INFINITY);
    xs.sort_by(f64::total_cmp);
    xs[((offered as f64 * 0.99).ceil() as usize).max(1) - 1]
}

fn show(name: &str, r: &RunReport, offered: usize) {
    let f = &r.routing.fault;
    let p99 = p99_all_offered(r, offered);
    println!(
        "  {name:<20} served={:<4} failed={:<3} shed={:<3} recovered={:<3} retries={:<3} \
         availability={:>6.2}% p99-offered={}",
        r.completed(),
        f.requests_failed,
        f.requests_shed,
        f.requests_recovered,
        f.retries,
        r.availability(offered) * 100.0,
        if p99.is_finite() {
            format!("{p99:.3}s")
        } else {
            "inf".into()
        },
    );
}

fn main() {
    println!("== Mid-burst crash of 1-of-4 engines: recovery vs abandonment ==");
    let clean_cfg = preset::chameleon_cluster_partitioned(4);
    let recovery_cfg = clean_cfg.clone().with_fault(
        FaultSpec::new()
            .with_crash(1, SimTime::from_secs_f64(CRASH_AT_SECS))
            .with_shedding(20.0),
    );
    let ablation_cfg = clean_cfg.clone().with_fault(
        FaultSpec::new()
            .with_crash(1, SimTime::from_secs_f64(CRASH_AT_SECS))
            .with_retry_policy(SimDuration::from_millis(50), SimDuration::from_secs(2), 0),
    );

    let pool = Simulation::new(clean_cfg.clone(), SEED).pool().clone();
    // A 3x burst from 8 s to 16 s; the crash lands at 10 s, inside it.
    let trace = workloads::splitwise_bursty(5.0, 25.0, 8.0, 8.0, 3.0, SEED, &pool);
    let offered = trace.len();
    println!("  {offered} requests over 25s, 3x burst 8s-16s, engine 1 dies at {CRASH_AT_SECS}s\n");

    let clean = Simulation::new(clean_cfg, SEED).run(&trace);
    let recovery = Simulation::new(recovery_cfg, SEED).run(&trace);
    let ablation = Simulation::new(ablation_cfg, SEED).run(&trace);
    show("clean", &clean, offered);
    show("crash + recovery", &recovery, offered);
    show("crash, no recovery", &ablation, offered);

    // Nothing lost, nothing duplicated — on every variant.
    clean.assert_request_conservation(offered);
    recovery.assert_request_conservation(offered);
    ablation.assert_request_conservation(offered);

    // Full re-dispatch: the crash actually hit live work, and every
    // victim request was recovered rather than counted failed.
    let f = &recovery.routing.fault;
    assert_eq!(f.engines_failed, 1, "the scheduled crash must land");
    assert!(f.requests_recovered > 0, "crash hit an idle engine");
    assert_eq!(
        f.requests_failed, 0,
        "recovery abandoned {} victim requests",
        f.requests_failed
    );
    assert!(
        recovery.routing.adapters_rehomed > 0,
        "shard never re-homed"
    );

    // Bounded degradation: losing a quarter of the fleet mid-burst hurts
    // the tail, but recovery keeps every offered request's TTFT finite
    // and the P99 within an order of magnitude of the clean run —
    // while the no-recovery ablation's offered-P99 is infinite.
    let p99_clean = p99_all_offered(&clean, offered);
    let p99_recovery = p99_all_offered(&recovery, offered);
    let p99_ablation = p99_all_offered(&ablation, offered);
    assert!(p99_recovery.is_finite(), "recovery left unserved requests");
    assert!(
        p99_recovery <= 10.0 * p99_clean,
        "P99 degradation unbounded: {p99_recovery:.3}s vs clean {p99_clean:.3}s"
    );
    assert!(
        p99_ablation.is_infinite(),
        "ablation served everything — the comparison is vacuous"
    );

    println!(
        "\n  recovery re-dispatched {}/{} victim requests; P99 {:.3}s -> {:.3}s \
         (no-recovery: inf, {} requests abandoned)",
        f.requests_recovered,
        f.requests_recovered + f.requests_failed,
        p99_clean,
        p99_recovery,
        ablation.routing.fault.requests_failed,
    );
}
