//! Predictive control plane, end to end: reactive vs predictive clusters
//! on identical traces.
//!
//! Two scenarios:
//!
//! 1. **Zipf-shift burst** (fixed 4-engine affinity fleet): steady
//!    traffic over one Zipf-popular adapter set, then the popular set
//!    *shifts* (adapter ids rotate by half the pool) and — after the
//!    predictor has seen the new regime — bursts to 8×. Reactively, the
//!    burst saturates the new set's home engines and spill lands on cold
//!    second choices; with pre-replication the coordinator has already
//!    warmed those second choices, so the same spills land hot.
//! 2. **Elastic burst with drain-back** (2→4 fleet): the autoscaler
//!    grows through a 20× burst and drains back afterwards. Reactively,
//!    each drain leaves the survivors to cold-miss the migrated shard;
//!    with handoff the departing shard is pushed into the survivors'
//!    caches over their PCIe links. The full control plane additionally
//!    scales up on TTFT-violation estimates before queues back up.
//!
//! Run with `cargo run --release --example predictive_cluster`. The
//! directional claims are asserted, so CI fails if prediction stops
//! paying for itself.

use chameleon_repro::core::{preset, sim::Simulation, workloads, PredictiveSpec, RunReport};
use chameleon_repro::models::{AdapterId, AdapterPool};
use chameleon_repro::simcore::{SimDuration, SimTime};
use chameleon_repro::workload::{Request, RequestId, Trace};

const SEED: u64 = 7;

/// Steady phase over the pool's natural Zipf-popular set, then the same
/// workload with every adapter id rotated by half the pool — a popularity
/// shift — holding steady long enough for the predictor to learn the new
/// regime before an 8× burst lands on it.
fn zipf_shift_burst_trace(pool: &AdapterPool, seed: u64) -> Trace {
    let n = pool.len() as u32;
    let phase1_secs = 20.0;
    let phase1 = workloads::splitwise(10.0, phase1_secs, seed, pool);
    let phase2 = workloads::splitwise_bursty(10.0, 40.0, 20.0, 10.0, 8.0, seed ^ 0x5eed, pool);
    let offset = SimDuration::from_secs_f64(phase1_secs);
    let mut reqs = phase1.requests().to_vec();
    for r in phase2.iter() {
        let shifted = AdapterId((r.adapter().0 + n / 2) % n);
        let rank = pool.get(shifted).expect("rotated id stays in pool").rank();
        reqs.push(Request::new(
            RequestId(r.id().0 + 1_000_000),
            r.arrival() + offset,
            r.input_tokens(),
            r.output_tokens(),
            shifted,
            rank,
        ));
    }
    Trace::new(reqs)
}

fn show(name: &str, r: &RunReport) {
    let p = &r.routing.predictive;
    println!(
        "  {name:<22} cold-misses={:<4} hit-rate={:>5.1}% spills={:<4} p99-ttft={:.3}s \
         prewarms={} (hits {}, wasted {}) handoff={} ({:.0} MB) slo-scaleups={}",
        r.cache_stats.misses,
        r.hit_rate() * 100.0,
        r.routing.spills,
        r.p99_ttft(),
        p.prewarms_issued,
        p.prewarm_hits,
        p.prewarm_wasted,
        p.handoff_adapters,
        p.handoff_bytes as f64 / 1e6,
        p.slo_scaleups,
    );
}

fn main() {
    println!("== Zipf-shift burst: fixed 4-engine affinity fleet ==");
    let reactive_cfg = preset::chameleon_cluster_partitioned(4);
    let predictive_cfg = preset::chameleon_cluster_predictive(4);
    let pool = Simulation::new(reactive_cfg.clone(), SEED).pool().clone();
    let trace = zipf_shift_burst_trace(&pool, SEED);
    println!(
        "  {} requests over {:.0}s, popularity shift at 20s, 8x burst at 40s",
        trace.len(),
        trace
            .requests()
            .last()
            .map(|r| r.arrival().as_secs_f64())
            .unwrap_or(0.0)
    );

    let reactive = Simulation::new(reactive_cfg, SEED).run(&trace);
    let predictive = Simulation::new(predictive_cfg, SEED).run(&trace);
    show("reactive", &reactive);
    show("predictive", &predictive);
    assert_eq!(reactive.completed(), predictive.completed());
    assert!(
        predictive.routing.predictive.prewarm_hits > 0,
        "spills never landed on a pre-replicated copy"
    );
    assert!(
        predictive.cache_stats.misses < reactive.cache_stats.misses,
        "pre-replication failed to cut cold misses ({} vs {})",
        predictive.cache_stats.misses,
        reactive.cache_stats.misses
    );

    println!("\n== Elastic 20x burst: 2..4 fleet with drain-back ==");
    let elastic = |predictive: Option<PredictiveSpec>| {
        let mut cfg = preset::chameleon_cluster_elastic();
        let auto = cfg.autoscale.as_mut().expect("elastic preset");
        auto.controller.interval = SimDuration::from_secs(1);
        auto.controller.cooldown = SimDuration::from_secs(3);
        auto.controller.scale_up_mean_queue = 4.0;
        auto.controller.scale_down_mean_queue = 0.5;
        cfg.predictive = predictive;
        cfg
    };
    let mut sim = Simulation::new(elastic(None), SEED);
    let burst = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, SEED, sim.pool());
    let reactive = sim.run(&burst);
    let handoff = Simulation::new(elastic(Some(PredictiveSpec::handoff_only())), SEED).run(&burst);
    let full = Simulation::new(elastic(Some(PredictiveSpec::new())), SEED).run(&burst);
    show("reactive", &reactive);
    show("handoff-only", &handoff);
    show("full control plane", &full);
    assert!(
        handoff.routing.predictive.handoff_adapters > 0,
        "drain-back never handed a shard off"
    );
    assert!(
        handoff.cache_stats.misses < reactive.cache_stats.misses,
        "handoff failed to cut post-drain cold misses ({} vs {})",
        handoff.cache_stats.misses,
        reactive.cache_stats.misses
    );
    assert!(
        full.cache_stats.misses < reactive.cache_stats.misses,
        "the full control plane should cut cold misses"
    );
    assert!(
        full.p99_ttft() <= reactive.p99_ttft(),
        "predictive scale-up should not worsen P99 TTFT ({:.3}s vs {:.3}s)",
        full.p99_ttft(),
        reactive.p99_ttft()
    );
    let horizon = burst
        .requests()
        .last()
        .map(|r| r.arrival())
        .unwrap_or(SimTime::ZERO);
    println!(
        "\n  {} requests over {:.0}s: prediction cut cold misses {} -> {} (handoff) / {} (full), P99 {:.3}s -> {:.3}s",
        burst.len(),
        horizon.as_secs_f64(),
        reactive.cache_stats.misses,
        handoff.cache_stats.misses,
        full.cache_stats.misses,
        reactive.p99_ttft(),
        full.p99_ttft(),
    );
}
