//! Cluster routing-policy shoot-out: the §4.4 global scheduler as an
//! experiment axis.
//!
//! One Zipf-skewed many-adapter trace (600 adapters, power-law popularity
//! across and within rank groups) is dispatched across a 4-engine
//! Chameleon cluster under each built-in routing policy. Queue-depth-only
//! dispatch replicates the adapter working set on every engine and
//! thrashes the caches; adapter-affinity routing partitions the working
//! set, trading a little load imbalance (bounded by load-aware spill) for
//! a much hotter cache.
//!
//! ```text
//! cargo run --release --example cluster_routing
//! ```

use chameleon_repro::core::sweep::RouterSweep;
use chameleon_repro::core::{preset, workloads, RouterPolicy};
use chameleon_repro::models::{AdapterPool, PopularityDist};

fn main() {
    let engines = 4;
    let mut cfg = preset::chameleon_cluster(engines)
        .with_adapters(600)
        .with_label("routing-study");
    cfg.rank_popularity = PopularityDist::power_law();

    let pool = AdapterPool::generate(&cfg.llm, &cfg.pool_config());
    let trace = workloads::lmsys(80.0, 60.0, 77, &pool);
    println!(
        "-- {} requests, {} adapters ({} GB if fully replicated), {engines} engines --\n",
        trace.len(),
        pool.len(),
        pool.total_bytes() >> 30,
    );

    let points = RouterSweep::new(cfg, 77).run_trace(&RouterPolicy::ALL, &trace);

    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "policy", "aff_hit%", "spill%", "imbalance", "cache_hit%", "p50_ttft", "p99_ttft"
    );
    for p in &points {
        let r = &p.report;
        println!(
            "{:<22} {:>8.1}% {:>8.1}% {:>10.3} {:>9.1}% {:>8.3}s {:>8.3}s",
            p.policy.name(),
            r.affinity_hit_rate() * 100.0,
            r.spill_rate() * 100.0,
            r.load_imbalance(),
            r.hit_rate() * 100.0,
            r.p50_ttft(),
            r.p99_ttft(),
        );
    }

    println!("\nper-engine dispatch counts:");
    for p in &points {
        println!(
            "  {:<20} {:?}",
            p.policy.name(),
            p.report.routing.per_engine
        );
    }

    let hit = |policy| {
        points
            .iter()
            .find(|p| p.policy == policy)
            .map(|p| p.report.hit_rate())
            .unwrap_or(0.0)
    };
    let jsq = hit(RouterPolicy::JoinShortestQueue);
    let aff = hit(RouterPolicy::AdapterAffinity);
    println!(
        "\nadapter-affinity lifts the cache hit rate {:.1}% -> {:.1}% over join-shortest-queue \
         ({:+.1} points) by partitioning the adapter working set across the fleet.",
        jsq * 100.0,
        aff * 100.0,
        (aff - jsq) * 100.0,
    );
    assert!(
        aff > jsq,
        "expected adapter-affinity ({aff:.3}) to beat JSQ ({jsq:.3}) on this scenario"
    );
}
